// Fixed-slot wall-clock profiler for the simulation kernel and its seams.
//
// The tracer answers "what happened in virtual time"; this answers "where
// did the *wall clock* go" — which seam is the real-machine bottleneck
// when a run is slow.  Sites are registered once per module with a string
// literal ("net.deliver", "rpc.handle", ...) and attributed into fixed
// slots: no allocation on enter/exit, a bounded frame stack for nesting
// (self time = elapsed minus child time), and an open-addressed fixed
// table of call paths so the data exports as a collapsed stack
// (flamegraph.pl / speedscope format) as well as a "sim top" text table.
//
// Everything here is wall-clock and therefore non-deterministic; outputs
// go to their own artifacts (BENCH_<tag>.prof.txt / .folded), never into
// the deterministic BENCH_<tag>.json — same isolation rule as wall_ms.
//
// Overflow policy: more sites, deeper nesting, or more distinct paths
// than the fixed tables hold are *counted*, never allocated — the
// profiler's cost model must not change under pathological load.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "obs/trace.hpp"

namespace coop::obs {

class Profiler {
 public:
  using SiteId = std::uint16_t;
  static constexpr SiteId kInvalidSite = 0xffff;

  static constexpr std::size_t kMaxSites = 64;   ///< distinct tags
  static constexpr std::size_t kMaxDepth = 16;   ///< nested scopes
  static constexpr std::size_t kMaxPaths = 256;  ///< distinct call paths

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// True when COOP_PROFILE is set to a non-"0" value.
  [[nodiscard]] static bool env_enabled() noexcept;

  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Registers (or looks up) a site tag.  @p name must be a string
  /// literal; the same pointer-or-spelling returns the same id.  Returns
  /// kInvalidSite once kMaxSites tags exist (counted in dropped_sites()).
  SiteId site(const char* name, Category cat) noexcept;

  /// Enters/leaves a profiled scope.  enter() no-ops while disabled;
  /// exit() always unwinds, so a pair whose enter ran stays balanced even
  /// if profiling is toggled off mid-scope.  Use the ProfScope wrapper —
  /// it latches the enter decision so the pair never splits.
  void enter(SiteId s) noexcept;
  void exit(SiteId s) noexcept;

  /// Attributes one kernel event dispatch (fed by the Simulator step
  /// timer): wall nanoseconds the event callback took.
  void note_step(std::uint64_t ns) noexcept {
    ++steps_;
    step_ns_ += ns;
  }

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::uint64_t step_ns() const noexcept { return step_ns_; }

  /// Per-site accounting.
  [[nodiscard]] std::uint64_t calls_of(SiteId s) const noexcept;
  [[nodiscard]] std::uint64_t self_ns_of(SiteId s) const noexcept;
  [[nodiscard]] std::uint64_t total_ns_of(SiteId s) const noexcept;
  [[nodiscard]] std::size_t site_count() const noexcept { return n_sites_; }

  /// Overflow counters: registrations refused, scopes skipped for depth,
  /// paths folded into nothing because the path table filled.
  [[nodiscard]] std::uint64_t dropped_sites() const noexcept {
    return dropped_sites_;
  }
  [[nodiscard]] std::uint64_t dropped_frames() const noexcept {
    return dropped_frames_;
  }
  [[nodiscard]] std::uint64_t dropped_paths() const noexcept {
    return dropped_paths_;
  }

  /// "sim top": sites sorted by self wall-time, plus the kernel step
  /// roll-up and overflow counters.  Human-oriented text.
  void write_top(std::ostream& out) const;

  /// Collapsed-stack export: one "site;site;site <self_us>" line per
  /// distinct path — pipe into flamegraph.pl or load in speedscope.
  void write_collapsed(std::ostream& out) const;

 private:
  struct Site {
    const char* name = "";
    Category cat = Category::kSim;
    std::uint64_t calls = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t total_ns = 0;
  };

  struct Frame {
    SiteId site = kInvalidSite;
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;  // time spent in nested scopes
    std::uint32_t path = 0;      // path-table slot of this frame's stack
  };

  struct Path {
    std::array<SiteId, kMaxDepth> sites{};
    std::uint8_t depth = 0;
    std::uint64_t self_ns = 0;
    std::uint64_t hits = 0;
    bool used = false;
  };

  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Finds-or-inserts the path formed by the current stack plus @p s.
  /// Returns kMaxPaths when the table is full (counted, not stored).
  std::uint32_t intern_path(SiteId s) noexcept;

  std::array<Site, kMaxSites> sites_{};
  std::array<Frame, kMaxDepth> stack_{};
  std::array<Path, kMaxPaths> paths_{};
  std::size_t n_sites_ = 0;
  std::size_t depth_ = 0;
  std::size_t skip_depth_ = 0;  // scopes entered past kMaxDepth
  std::uint64_t steps_ = 0;
  std::uint64_t step_ns_ = 0;
  std::uint64_t dropped_sites_ = 0;
  std::uint64_t dropped_frames_ = 0;
  std::uint64_t dropped_paths_ = 0;
  bool enabled_ = false;
};

/// RAII profiled scope: `ProfScope ps(profiler, site_id);`.  Cost when
/// profiling is off: one load + branch.  The entered state is latched so
/// toggling set_enabled() mid-scope cannot unbalance the frame stack.
class ProfScope {
 public:
  ProfScope(Profiler& p, Profiler::SiteId s) noexcept
      : p_(p), s_(s), active_(p.enabled()) {
    if (active_) p_.enter(s_);
  }
  ~ProfScope() {
    if (active_) p_.exit(s_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler& p_;
  Profiler::SiteId s_;
  bool active_;
};

}  // namespace coop::obs
