// Declarative SLO watchdog over the windowed timeseries.
//
// The paper's thesis is that a CSCW platform must *manage* QoS
// continuously, not merely provide it.  This module is the management
// plane's sensor: rules like "core RTT p99 stays under 120 ms", "core
// goodput holds 100/s", "drop rate stays under 5/s" are evaluated
// against every sealed virtual-time window, with hysteresis (K breaching
// windows to trip, M clean ones to recover) so one bad window does not
// flap health.  Transitions emit `slo_breach` / `slo_recovered` trace
// events and per-rule metrics, so a trajectory artifact shows *when* an
// objective was lost and regained, not just whether the run ended well.
//
// Strict mode: each rule carries a breach-window budget; violations()
// reports rules that overspent it (or never recovered), which the soak
// binaries turn into a non-zero exit when COOP_SLO_STRICT is set —
// upgrading the chaos and overload soaks into SLO-checked soaks.
//
// Determinism: evaluation consumes only virtual-time windows, so health
// trajectories are byte-identical across same-seed runs.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "sim/time.hpp"

namespace coop::obs {

class MetricsRegistry;
class Tracer;

/// One service-level objective over a timeseries.
struct SloRule {
  enum class Kind : std::uint8_t {
    kP50Ceiling,   ///< window p50 of observed values must stay <= threshold
    kP95Ceiling,   ///< window p95 must stay <= threshold
    kP99Ceiling,   ///< window p99 must stay <= threshold
    kRateFloor,    ///< events/sec must stay >= threshold (empty window = 0)
    kRateCeiling,  ///< events/sec must stay <= threshold
  };

  std::string name;    ///< metric/trace label ("core_rtt_p99")
  std::string series;  ///< timeseries name this rule watches
  Kind kind = Kind::kP99Ceiling;
  double threshold = 0;

  int trip_windows = 1;     ///< consecutive breaches before unhealthy
  int recover_windows = 1;  ///< consecutive clean windows before healthy

  /// Rule applies to windows with t0 in [active_from, active_until).
  /// Bounds carve out warm-up and drain phases (a goodput floor must not
  /// fire after traffic intentionally stops).
  sim::TimePoint active_from = 0;
  sim::TimePoint active_until = std::numeric_limits<sim::TimePoint>::max();

  /// Strict-mode budget: breaching more windows than this is a
  /// violation.  0 = any breach violates.
  std::uint64_t allowed_breach_windows = 0;

  /// Strict mode also fails a rule that is still unhealthy after its
  /// last evaluated window (it never recovered).
  bool must_end_healthy = true;
};

/// Evaluates SloRules against every window the Timeseries seals.
class SloWatchdog {
 public:
  /// Registers itself as @p ts's sealed-window observer.
  SloWatchdog(Timeseries& ts, Tracer& tracer, MetricsRegistry& metrics);

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  void add_rule(SloRule rule);

  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules_.size();
  }

  struct RuleState {
    std::uint64_t evaluated = 0;       ///< windows in the active range
    std::uint64_t breach_windows = 0;  ///< windows over/under threshold
    std::uint64_t transitions = 0;     ///< health flips (either way)
    int consec_breach = 0;
    int consec_ok = 0;
    bool healthy = true;
  };

  [[nodiscard]] const SloRule& rule(std::size_t i) const {
    return rules_[i].rule;
  }
  [[nodiscard]] const RuleState& state(std::size_t i) const {
    return rules_[i].state;
  }

  [[nodiscard]] std::uint64_t transitions_total() const noexcept;

  /// Rules that overspent their breach budget or (if must_end_healthy)
  /// are still unhealthy.  Zero means every objective held.
  [[nodiscard]] std::size_t violations() const;

  /// Human-readable one-liners for each violating rule.
  [[nodiscard]] std::vector<std::string> violation_messages() const;

 private:
  struct Entry {
    SloRule rule;
    RuleState state;
    Timeseries::SeriesId series_id = Timeseries::kInvalidSeries;
  };

  static void on_window(void* self, const Timeseries& ts,
                        const Timeseries::Window& w);
  void evaluate(const Timeseries& ts, const Timeseries::Window& w);
  [[nodiscard]] bool violating(const Entry& e) const noexcept;

  Timeseries& ts_;
  Tracer& tracer_;
  MetricsRegistry& metrics_;
  std::vector<Entry> rules_;
};

}  // namespace coop::obs
