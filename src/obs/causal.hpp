// Causal correlation vocabulary for end-to-end tracing.
//
// A CausalContext is the (trace, span, parent) triple that links every
// record a single user action produces — an RPC call, its retries, the
// datagram hops they generate, the group re-multicasts, the frames of a
// media stream — into one reconstructable tree.  Contexts are minted by
// the Tracer (deterministically: a per-tracer counter, so runs with the
// same seed produce the same ids) at user-action entry points and
// propagated in-band: net::Message carries the context as a simulated
// header field, and each layer that forwards work derives a child
// context for the hop it adds.
//
// The struct is deliberately dependency-free (three integers) so the
// wire-level net/ headers can carry it without pulling in the tracer.
#pragma once

#include <cstdint>

namespace coop::obs {

/// The causal triple: which trace a record belongs to, which span it is,
/// and which span caused it.  trace_id == 0 means "no context" — records
/// without one are standalone, exactly as before causal tracing existed.
struct CausalContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;

  /// A context is live once it has been minted from a trace root.
  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }

  /// Derives the context for work caused by this span.  @p new_span must
  /// come from Tracer::mint_id() so ids stay unique per tracer.
  [[nodiscard]] CausalContext child(std::uint64_t new_span) const noexcept {
    return {trace_id, new_span, span_id};
  }

  bool operator==(const CausalContext&) const = default;
};

}  // namespace coop::obs
