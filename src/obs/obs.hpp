// The coop_obs bundle: one MetricsRegistry + one Tracer per platform.
//
// Every Platform owns (or is handed) an Obs; modules reach it through
// Network::obs() or an explicit constructor argument and record into the
// shared registry/ring.  A scoped process default exists solely for the
// bench harness, which must aggregate across the many short-lived
// Platforms one benchmark constructs — it is installed RAII-style by the
// harness main and never mutated by library code, preserving the
// "no hidden global state" rule for everything but that one explicit
// harness hook.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace coop::obs {

/// Provenance of a run, stamped into the BENCH_<tag>.json artifact so a
/// result can be reproduced from the artifact alone.  Platforms register
/// their RNG seeds as they are constructed; the harness fills wall-clock
/// duration and free-form config knobs.
struct RunMeta {
  std::uint64_t platforms = 0;   ///< Platforms constructed against this Obs
  std::uint64_t first_seed = 0;  ///< seed of the first Platform
  std::uint64_t last_seed = 0;   ///< seed of the most recent Platform
  /// Harness wall-clock duration in milliseconds; negative = not
  /// measured.  The one non-deterministic field in the artifact (strip
  /// its line before diffing same-seed runs).
  double wall_ms = -1;
  std::map<std::string, std::string> knobs;  ///< free-form config knobs

  void note_platform(std::uint64_t seed) noexcept {
    if (platforms == 0) first_seed = seed;
    last_seed = seed;
    ++platforms;
  }
};

/// The per-platform observability context: run-level metrics, the causal
/// trace ring (with head sampling), the wall-clock profiler, windowed
/// virtual-time series, and the SLO watchdog observing those windows.
struct Obs {
  Obs() : slo(series, tracer, metrics) {
    if (Profiler::env_enabled()) profiler.set_enabled(true);
  }

  MetricsRegistry metrics;
  Tracer tracer;
  Profiler profiler;
  Timeseries series;
  SloWatchdog slo;
  RunMeta meta;
};

/// The current ambient default (nullptr unless a ScopedDefaultObs is
/// live).  Platform falls back to this when constructed without an
/// explicit Obs.
[[nodiscard]] Obs* default_obs() noexcept;

/// RAII installer for the ambient default; restores the previous value on
/// destruction.  Used by the bench harness main().
class ScopedDefaultObs {
 public:
  explicit ScopedDefaultObs(Obs* obs) noexcept;
  ~ScopedDefaultObs();

  ScopedDefaultObs(const ScopedDefaultObs&) = delete;
  ScopedDefaultObs& operator=(const ScopedDefaultObs&) = delete;

 private:
  Obs* prev_;
};

/// Dumps an experiment's observability state for offline inspection:
/// `BENCH_<tag>.json` (run metadata + critical-path latency breakdown +
/// metrics snapshot + windowed timeseries) and `BENCH_<tag>.trace.json`
/// (Chrome trace_event format) written into @p dir.  Seals the open
/// timeseries window first (hence non-const).  When the profiler is
/// enabled, also writes `BENCH_<tag>.prof.txt` (sim top) and
/// `BENCH_<tag>.folded` (collapsed stacks) — wall-clock data kept out of
/// the deterministic .json, same isolation rule as wall_ms.  Returns
/// false if a deterministic artifact could not be written.
bool write_bench_artifacts(Obs& obs, const std::string& tag,
                           const std::string& dir = ".");

/// Writes @p tracer's retained records as Chrome trace_event JSON to
/// @p path (open in about:tracing / Perfetto).  Returns false if the file
/// could not be written.  Used by the examples so every scenario leaves
/// an inspectable causal trace behind.
bool write_trace_json(const Tracer& tracer, const std::string& path);

}  // namespace coop::obs
