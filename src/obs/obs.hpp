// The coop_obs bundle: one MetricsRegistry + one Tracer per platform.
//
// Every Platform owns (or is handed) an Obs; modules reach it through
// Network::obs() or an explicit constructor argument and record into the
// shared registry/ring.  A scoped process default exists solely for the
// bench harness, which must aggregate across the many short-lived
// Platforms one benchmark constructs — it is installed RAII-style by the
// harness main and never mutated by library code, preserving the
// "no hidden global state" rule for everything but that one explicit
// harness hook.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coop::obs {

/// The per-platform observability context.
struct Obs {
  MetricsRegistry metrics;
  Tracer tracer;
};

/// The current ambient default (nullptr unless a ScopedDefaultObs is
/// live).  Platform falls back to this when constructed without an
/// explicit Obs.
[[nodiscard]] Obs* default_obs() noexcept;

/// RAII installer for the ambient default; restores the previous value on
/// destruction.  Used by the bench harness main().
class ScopedDefaultObs {
 public:
  explicit ScopedDefaultObs(Obs* obs) noexcept;
  ~ScopedDefaultObs();

  ScopedDefaultObs(const ScopedDefaultObs&) = delete;
  ScopedDefaultObs& operator=(const ScopedDefaultObs&) = delete;

 private:
  Obs* prev_;
};

/// Dumps an experiment's observability state for offline inspection:
/// `BENCH_<tag>.json` (metrics snapshot) and `BENCH_<tag>.trace.json`
/// (Chrome trace_event format) written into @p dir.  Returns false if
/// either file could not be written.
bool write_bench_artifacts(const Obs& obs, const std::string& tag,
                           const std::string& dir = ".");

}  // namespace coop::obs
