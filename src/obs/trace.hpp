// Structured sim-time tracing with a fixed-capacity ring buffer.
//
// Hot seams across the platform (simulator steps, network send/deliver/
// drop, RPC request/reply/retry, group multicast/ack, lock acquire/block/
// release) record span/event records here.  Records are tiny PODs —
// category is a closed enum, names and attribute keys must be string
// literals — so recording never allocates and the ring can sit on every
// hot path.  The ring keeps the most recent `capacity` records; older
// ones are evicted (counted in dropped(), per category in
// dropped_of()).
//
// Causal correlation: records may carry a CausalContext (trace, span,
// parent ids).  The tracer mints ids deterministically (mint_id /
// begin_trace); layers propagate contexts through net::Message and derive
// children per hop, so one user action is reconstructable across every
// seam.
//
// Sampling: head-based and trace-consistent.  The keep/drop decision for
// a causal record hashes only its trace_id (seed-stable splitmix64
// finalizer), so every span of a sampled trace is retained end-to-end
// across net/rpc/groups/fifo while an unsampled trace costs one branch
// per would-be record.  Rates are per category (SampleConfig /
// COOP_TRACE_SAMPLE); records without a context use stratified
// sampling instead — a per-category accumulator that wraps once every
// 1/rate attempts, advancing whether or not the record is kept — so
// the sampled set is a pure function of (seed, rate), independent of
// category masks and identical across same-seed runs, and the per-
// attempt cost is one add and compare instead of a hash.
//
// Two offline formats are exported: JSONL (one record per line, easy to
// grep/jq) and the Chrome trace_event JSON array, which opens directly in
// about:tracing / Perfetto.  The Chrome exporter lays each category out
// on its own thread track and emits parent/child links as flow events, so
// Perfetto draws the causal arrows.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "obs/causal.hpp"
#include "sim/time.hpp"

namespace coop::obs {

/// Trace categories — a closed set so filtering is a bitmask test and
/// records never carry strings.
enum class Category : std::uint8_t {
  kSim = 0,
  kNet,
  kRpc,
  kGroup,
  kLock,
  kStream,
  kApp,
  kFault,
  kAwareness,
  kDurable,
};

inline constexpr std::size_t kCategoryCount = 10;

/// Stable short name used in exports ("sim", "net", ...).
[[nodiscard]] const char* category_name(Category c) noexcept;

/// Parses a category short name ("sim", "net", ...).  Returns true and
/// sets @p out on a match.
[[nodiscard]] bool category_from_name(const char* begin, const char* end,
                                      Category& out) noexcept;

/// Head-sampling policy: per-category keep rates plus the hash seed.
/// Deterministic by construction — the same (seed, rate) pair always
/// selects the same trace ids, on any run, with any category mask.
struct SampleConfig {
  /// Default hash seed ("Coop93"); any fixed value works, the seed only
  /// decorrelates the sampled set from the trace-id sequence.
  static constexpr std::uint64_t kDefaultSeed = 0x436f6f703933ULL;

  SampleConfig() { rate.fill(1.0); }

  std::array<double, kCategoryCount> rate;  ///< keep probability in [0,1]
  std::uint64_t seed = kDefaultSeed;

  /// Sets every category to the same rate.
  void set_all(double r) noexcept { rate.fill(r); }

  /// Builds a config from the environment:
  ///   COOP_TRACE_SAMPLE       "0.01" (global) or "net=0.1,rpc=1,*=0.01"
  ///                           (per category; "*" sets the remainder)
  ///   COOP_TRACE_SAMPLE_SEED  decimal hash seed override
  /// Unset or unparsable pieces fall back to rate 1.0 / kDefaultSeed.
  [[nodiscard]] static SampleConfig from_env() noexcept;
};

namespace detail {

/// splitmix64 finalizer: a full-avalanche bijection, so comparing the
/// mixed key against rate * 2^64 keeps exactly that fraction of ids with
/// no correlation to the sequential trace-id stream.  Inline because the
/// sampling decision runs on the hot record() path.
inline std::uint64_t sample_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Salt decorrelating ctx-less accumulator phases from real trace ids.
inline constexpr std::uint64_t kNonCtxSalt = 0x6e6f2d63747800ULL;  // "no-ctx"

}  // namespace detail

/// One key/value attribute.  The key must outlive the tracer (use string
/// literals); the value is always numeric — addresses, sizes, durations
/// and ids all fit, and it keeps records fixed-size.
struct Attr {
  const char* key = "";
  double value = 0;
};

/// A single trace record.  `dur == 0` marks an instant event; `dur > 0`
/// marks a span covering [ts, ts + dur].  `ctx` carries the causal triple
/// when the recording seam had one (trace_id == 0 otherwise).
struct TraceEvent {
  sim::TimePoint ts = 0;
  sim::Duration dur = 0;
  Category category = Category::kSim;
  std::uint8_t attr_count = 0;
  const char* name = "";
  CausalContext ctx{};
  std::array<Attr, 4> attrs{};
};

/// Ring-buffered trace sink.  Storage is allocated lazily on the first
/// record, so idle tracers cost a few pointers.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// Hard ceiling on ring capacity (~4M records, ~0.5 GiB).  Requests
  /// above it — e.g. an absurd COOP_TRACE_CAP — clamp here and are
  /// counted in cap_clamps() instead of attempting a giant resize.
  static constexpr std::size_t kMaxCapacity = std::size_t{1} << 22;

  /// Ring capacity of a default-constructed tracer: the COOP_TRACE_CAP
  /// environment variable if set to a positive integer (clamped to
  /// kMaxCapacity), else kDefaultCapacity.
  [[nodiscard]] static std::size_t default_capacity() noexcept;

  /// Process-wide count of capacity requests clamped to kMaxCapacity.
  [[nodiscard]] static std::uint64_t cap_clamps() noexcept;

  Tracer() : Tracer(default_capacity()) {}

  explicit Tracer(std::size_t capacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch; a disabled tracer records nothing.
  void set_enabled(bool on) noexcept { master_enabled_ = on; }

  /// Per-category filter (all categories start enabled).
  void set_category_enabled(Category c, bool on) noexcept {
    const auto bit = static_cast<std::uint16_t>(1u << static_cast<int>(c));
    if (on)
      mask_ = static_cast<std::uint16_t>(mask_ | bit);
    else
      mask_ = static_cast<std::uint16_t>(mask_ & ~bit);
  }

  [[nodiscard]] bool enabled(Category c) const noexcept {
    return master_enabled_ &&
           (mask_ & (1u << static_cast<int>(c))) != 0;
  }

  // --- sampling ------------------------------------------------------------

  /// Installs a head-sampling policy (default: keep everything).
  void set_sampling(const SampleConfig& cfg) noexcept;

  [[nodiscard]] const SampleConfig& sampling() const noexcept {
    return sample_cfg_;
  }

  /// The keep/drop decision this tracer would make for a causal record of
  /// @p c carrying @p trace_id.  Pure: depends only on the installed
  /// (seed, rate) — lets tests and analyzers predict the sampled set.
  [[nodiscard]] bool would_sample(Category c, std::uint64_t trace_id)
      const noexcept;

  /// Records kept by the sampler per category (includes rate-1.0 keeps).
  [[nodiscard]] std::uint64_t sampled_of(Category c) const noexcept {
    return cat_[static_cast<std::size_t>(c)].sampled;
  }

  /// Records rejected by the sampler per category.
  [[nodiscard]] std::uint64_t unsampled_of(Category c) const noexcept {
    return cat_[static_cast<std::size_t>(c)].unsampled;
  }

  // --- causal ids ----------------------------------------------------------

  /// Mints a fresh span id.  Deterministic: a per-tracer counter, never
  /// affected by filtering, so same-seed runs mint identical ids.
  [[nodiscard]] std::uint64_t mint_id() noexcept { return next_span_id_++; }

  /// Starts a new trace at a user-action entry point: the root span's id
  /// doubles as the trace id.
  [[nodiscard]] CausalContext begin_trace() noexcept {
    const std::uint64_t id = mint_id();
    return {id, id, 0};
  }

  // --- recording -----------------------------------------------------------

  /// Records an instant event at @p ts.  At most 4 attributes are kept.
  void event(sim::TimePoint ts, Category c, const char* name,
             std::initializer_list<Attr> attrs = {}) {
    record(ts, 0, c, name, {}, attrs);
  }

  /// Records an instant event carrying a causal context.
  void event(sim::TimePoint ts, Category c, const char* name,
             const CausalContext& ctx,
             std::initializer_list<Attr> attrs = {}) {
    record(ts, 0, c, name, ctx, attrs);
  }

  /// Records a span covering [start, end] (clamped to zero length if the
  /// interval is inverted).
  void span(sim::TimePoint start, sim::TimePoint end, Category c,
            const char* name, std::initializer_list<Attr> attrs = {}) {
    record(start, end > start ? end - start : 0, c, name, {}, attrs);
  }

  /// Records a span carrying a causal context.
  void span(sim::TimePoint start, sim::TimePoint end, Category c,
            const char* name, const CausalContext& ctx,
            std::initializer_list<Attr> attrs = {}) {
    record(start, end > start ? end - start : 0, c, name, ctx, attrs);
  }

  /// Records currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Total records ever accepted (past filtering).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }

  /// Records evicted by ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ - count_;
  }

  /// Records of one category evicted by ring wraparound — identifies
  /// which seam the ring is squeezing out.
  [[nodiscard]] std::uint64_t dropped_of(Category c) const noexcept {
    return dropped_by_cat_[static_cast<std::size_t>(c)];
  }

  void clear() noexcept {
    count_ = 0;
    head_ = 0;
    recorded_ = 0;
    dropped_by_cat_.fill(0);
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      reset_nonctx(c);
      cat_[c].sampled = 0;
      cat_[c].unsampled = 0;
      // thresholds are config, not counters: they survive clear().
    }
    // next_span_id_ is deliberately not reset: retained contexts held by
    // live modules must never collide with post-clear mints.
  }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// One JSON object per line, oldest first.  Causal records carry
  /// "trace"/"span"/"parent" fields.
  void export_jsonl(std::ostream& out) const;

  /// Chrome trace_event format (the "traceEvents" array form); opens in
  /// about:tracing and Perfetto.  Timestamps are already microseconds,
  /// matching the format's native unit.  Each category gets its own
  /// thread track, and parent/child causal links are emitted as flow
  /// events ("s"/"f" pairs) so the UI draws arrows across seams.
  void export_chrome(std::ostream& out) const;

 private:
  /// Inline keep/drop decision: disabled, rate-0 and hashed-out records
  /// are rejected without any out-of-line call (so the compiler can also
  /// discard the caller's attribute materialization) — the "always-on,
  /// never felt" cost the overhead gate enforces.  Only kept records pay
  /// the record_kept() call and ring store.
  void record(sim::TimePoint ts, sim::Duration dur, Category c,
              const char* name, const CausalContext& ctx,
              std::initializer_list<Attr> attrs) {
    if (!enabled(c)) return;
    CatSample& cs = cat_[static_cast<std::size_t>(c)];
    if (cs.threshold != kSampleAlways) {
      if (cs.threshold == 0) {
        // Sampled out wholesale.  The attempt counter is not advanced:
        // nothing from this category can be kept, so there is no
        // sampled set whose stability could depend on it.
        ++cs.unsampled;
        return;
      }
      // Causal records hash only their trace id: one trace is either
      // kept whole across every seam or skipped whole.  Ctx-less
      // records use the stratified accumulator — it wraps (keeps) once
      // every 1/rate attempts on average and advances either way, so
      // the sampled set never depends on what else was filtered, and
      // the hot per-step kernel record pays an add instead of a hash.
      bool keep;
      if (ctx.valid()) {
        keep = detail::sample_mix(ctx.trace_id ^ sample_cfg_.seed) <
               cs.threshold;
      } else {
        keep = (cs.nonctx_acc += cs.threshold) < cs.threshold;
      }
      if (!keep) {
        ++cs.unsampled;
        return;
      }
    }
    record_kept(ts, dur, c, name, ctx, attrs);
  }

  void record_kept(sim::TimePoint ts, sim::Duration dur, Category c,
                   const char* name, const CausalContext& ctx,
                   std::initializer_list<Attr> attrs);

  /// Sentinel threshold meaning "keep everything, skip the hash".
  static constexpr std::uint64_t kSampleAlways = ~std::uint64_t{0};

  /// Per-category sampling hot state, packed so one drop decision
  /// touches a single cache line instead of four parallel arrays.
  /// hash(trace_id ^ seed) < threshold keeps a causal record;
  /// kSampleAlways short-circuits so the default (rate 1.0) path never
  /// hashes.  nonctx_acc drives ctx-less records: it starts at a
  /// seed-derived phase and gains `threshold` per attempt (kept or
  /// not), keeping exactly the attempts where the 64-bit add wraps —
  /// evenly spaced at the configured rate and mask-independent.
  struct CatSample {
    std::uint64_t threshold = 0;
    std::uint64_t nonctx_acc = 0;
    std::uint64_t sampled = 0;
    std::uint64_t unsampled = 0;
  };

  /// Re-phases category @p c's ctx-less accumulator from the seed so the
  /// stratified sampled set is a pure function of (seed, rate).
  void reset_nonctx(std::size_t c) noexcept {
    cat_[c].nonctx_acc =
        detail::sample_mix(sample_cfg_.seed ^ (detail::kNonCtxSalt + c));
  }

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // allocated on first record
  std::size_t head_ = 0;          // next write slot
  std::size_t count_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t next_span_id_ = 1;
  std::array<std::uint64_t, kCategoryCount> dropped_by_cat_{};
  std::array<CatSample, kCategoryCount> cat_{};
  SampleConfig sample_cfg_;
  std::uint16_t mask_ = (1u << kCategoryCount) - 1;  // all categories on
  bool master_enabled_ = true;
};

}  // namespace coop::obs
