// Structured sim-time tracing with a fixed-capacity ring buffer.
//
// Hot seams across the platform (simulator steps, network send/deliver/
// drop, RPC request/reply/retry, group multicast/ack, lock acquire/block/
// release) record span/event records here.  Records are tiny PODs —
// category is a closed enum, names and attribute keys must be string
// literals — so recording never allocates and the ring can sit on every
// hot path.  The ring keeps the most recent `capacity` records; older
// ones are evicted (counted in dropped()).
//
// Two offline formats are exported: JSONL (one record per line, easy to
// grep/jq) and the Chrome trace_event JSON array, which opens directly in
// about:tracing / Perfetto.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "sim/time.hpp"

namespace coop::obs {

/// Trace categories — a closed set so filtering is a bitmask test and
/// records never carry strings.
enum class Category : std::uint8_t {
  kSim = 0,
  kNet,
  kRpc,
  kGroup,
  kLock,
  kStream,
  kApp,
};

inline constexpr std::size_t kCategoryCount = 7;

/// Stable short name used in exports ("sim", "net", ...).
[[nodiscard]] const char* category_name(Category c) noexcept;

/// One key/value attribute.  The key must outlive the tracer (use string
/// literals); the value is always numeric — addresses, sizes, durations
/// and ids all fit, and it keeps records fixed-size.
struct Attr {
  const char* key = "";
  double value = 0;
};

/// A single trace record.  `dur == 0` marks an instant event; `dur > 0`
/// marks a span covering [ts, ts + dur].
struct TraceEvent {
  sim::TimePoint ts = 0;
  sim::Duration dur = 0;
  Category category = Category::kSim;
  std::uint8_t attr_count = 0;
  const char* name = "";
  std::array<Attr, 4> attrs{};
};

/// Ring-buffered trace sink.  Storage is allocated lazily on the first
/// record, so idle tracers cost a few pointers.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch; a disabled tracer records nothing.
  void set_enabled(bool on) noexcept { master_enabled_ = on; }

  /// Per-category filter (all categories start enabled).
  void set_category_enabled(Category c, bool on) noexcept {
    const auto bit = static_cast<std::uint8_t>(1u << static_cast<int>(c));
    if (on)
      mask_ = static_cast<std::uint8_t>(mask_ | bit);
    else
      mask_ = static_cast<std::uint8_t>(mask_ & ~bit);
  }

  [[nodiscard]] bool enabled(Category c) const noexcept {
    return master_enabled_ &&
           (mask_ & (1u << static_cast<int>(c))) != 0;
  }

  /// Records an instant event at @p ts.  At most 4 attributes are kept.
  void event(sim::TimePoint ts, Category c, const char* name,
             std::initializer_list<Attr> attrs = {}) {
    record(ts, 0, c, name, attrs);
  }

  /// Records a span covering [start, end] (clamped to zero length if the
  /// interval is inverted).
  void span(sim::TimePoint start, sim::TimePoint end, Category c,
            const char* name, std::initializer_list<Attr> attrs = {}) {
    record(start, end > start ? end - start : 0, c, name, attrs);
  }

  /// Records currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Total records ever accepted (past filtering).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }

  /// Records evicted by ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ - count_;
  }

  void clear() noexcept {
    count_ = 0;
    head_ = 0;
    recorded_ = 0;
  }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// One JSON object per line, oldest first.
  void export_jsonl(std::ostream& out) const;

  /// Chrome trace_event format (the "traceEvents" array form); opens in
  /// about:tracing and Perfetto.  Timestamps are already microseconds,
  /// matching the format's native unit.
  void export_chrome(std::ostream& out) const;

 private:
  void record(sim::TimePoint ts, sim::Duration dur, Category c,
              const char* name, std::initializer_list<Attr> attrs);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // allocated on first record
  std::size_t head_ = 0;          // next write slot
  std::size_t count_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint8_t mask_ = 0x7f;      // all categories on
  bool master_enabled_ = true;
};

}  // namespace coop::obs
