// Structured sim-time tracing with a fixed-capacity ring buffer.
//
// Hot seams across the platform (simulator steps, network send/deliver/
// drop, RPC request/reply/retry, group multicast/ack, lock acquire/block/
// release) record span/event records here.  Records are tiny PODs —
// category is a closed enum, names and attribute keys must be string
// literals — so recording never allocates and the ring can sit on every
// hot path.  The ring keeps the most recent `capacity` records; older
// ones are evicted (counted in dropped(), per category in
// dropped_of()).
//
// Causal correlation: records may carry a CausalContext (trace, span,
// parent ids).  The tracer mints ids deterministically (mint_id /
// begin_trace); layers propagate contexts through net::Message and derive
// children per hop, so one user action is reconstructable across every
// seam.
//
// Two offline formats are exported: JSONL (one record per line, easy to
// grep/jq) and the Chrome trace_event JSON array, which opens directly in
// about:tracing / Perfetto.  The Chrome exporter lays each category out
// on its own thread track and emits parent/child links as flow events, so
// Perfetto draws the causal arrows.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "obs/causal.hpp"
#include "sim/time.hpp"

namespace coop::obs {

/// Trace categories — a closed set so filtering is a bitmask test and
/// records never carry strings.
enum class Category : std::uint8_t {
  kSim = 0,
  kNet,
  kRpc,
  kGroup,
  kLock,
  kStream,
  kApp,
  kFault,
  kAwareness,
};

inline constexpr std::size_t kCategoryCount = 9;

/// Stable short name used in exports ("sim", "net", ...).
[[nodiscard]] const char* category_name(Category c) noexcept;

/// One key/value attribute.  The key must outlive the tracer (use string
/// literals); the value is always numeric — addresses, sizes, durations
/// and ids all fit, and it keeps records fixed-size.
struct Attr {
  const char* key = "";
  double value = 0;
};

/// A single trace record.  `dur == 0` marks an instant event; `dur > 0`
/// marks a span covering [ts, ts + dur].  `ctx` carries the causal triple
/// when the recording seam had one (trace_id == 0 otherwise).
struct TraceEvent {
  sim::TimePoint ts = 0;
  sim::Duration dur = 0;
  Category category = Category::kSim;
  std::uint8_t attr_count = 0;
  const char* name = "";
  CausalContext ctx{};
  std::array<Attr, 4> attrs{};
};

/// Ring-buffered trace sink.  Storage is allocated lazily on the first
/// record, so idle tracers cost a few pointers.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// Ring capacity of a default-constructed tracer: the COOP_TRACE_CAP
  /// environment variable if set to a positive integer, else
  /// kDefaultCapacity.
  [[nodiscard]] static std::size_t default_capacity() noexcept;

  Tracer() : capacity_(default_capacity()) {}

  explicit Tracer(std::size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch; a disabled tracer records nothing.
  void set_enabled(bool on) noexcept { master_enabled_ = on; }

  /// Per-category filter (all categories start enabled).
  void set_category_enabled(Category c, bool on) noexcept {
    const auto bit = static_cast<std::uint16_t>(1u << static_cast<int>(c));
    if (on)
      mask_ = static_cast<std::uint16_t>(mask_ | bit);
    else
      mask_ = static_cast<std::uint16_t>(mask_ & ~bit);
  }

  [[nodiscard]] bool enabled(Category c) const noexcept {
    return master_enabled_ &&
           (mask_ & (1u << static_cast<int>(c))) != 0;
  }

  // --- causal ids ----------------------------------------------------------

  /// Mints a fresh span id.  Deterministic: a per-tracer counter, never
  /// affected by filtering, so same-seed runs mint identical ids.
  [[nodiscard]] std::uint64_t mint_id() noexcept { return next_span_id_++; }

  /// Starts a new trace at a user-action entry point: the root span's id
  /// doubles as the trace id.
  [[nodiscard]] CausalContext begin_trace() noexcept {
    const std::uint64_t id = mint_id();
    return {id, id, 0};
  }

  // --- recording -----------------------------------------------------------

  /// Records an instant event at @p ts.  At most 4 attributes are kept.
  void event(sim::TimePoint ts, Category c, const char* name,
             std::initializer_list<Attr> attrs = {}) {
    record(ts, 0, c, name, {}, attrs);
  }

  /// Records an instant event carrying a causal context.
  void event(sim::TimePoint ts, Category c, const char* name,
             const CausalContext& ctx,
             std::initializer_list<Attr> attrs = {}) {
    record(ts, 0, c, name, ctx, attrs);
  }

  /// Records a span covering [start, end] (clamped to zero length if the
  /// interval is inverted).
  void span(sim::TimePoint start, sim::TimePoint end, Category c,
            const char* name, std::initializer_list<Attr> attrs = {}) {
    record(start, end > start ? end - start : 0, c, name, {}, attrs);
  }

  /// Records a span carrying a causal context.
  void span(sim::TimePoint start, sim::TimePoint end, Category c,
            const char* name, const CausalContext& ctx,
            std::initializer_list<Attr> attrs = {}) {
    record(start, end > start ? end - start : 0, c, name, ctx, attrs);
  }

  /// Records currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Total records ever accepted (past filtering).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }

  /// Records evicted by ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ - count_;
  }

  /// Records of one category evicted by ring wraparound — identifies
  /// which seam the ring is squeezing out.
  [[nodiscard]] std::uint64_t dropped_of(Category c) const noexcept {
    return dropped_by_cat_[static_cast<std::size_t>(c)];
  }

  void clear() noexcept {
    count_ = 0;
    head_ = 0;
    recorded_ = 0;
    dropped_by_cat_.fill(0);
    // next_span_id_ is deliberately not reset: retained contexts held by
    // live modules must never collide with post-clear mints.
  }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// One JSON object per line, oldest first.  Causal records carry
  /// "trace"/"span"/"parent" fields.
  void export_jsonl(std::ostream& out) const;

  /// Chrome trace_event format (the "traceEvents" array form); opens in
  /// about:tracing and Perfetto.  Timestamps are already microseconds,
  /// matching the format's native unit.  Each category gets its own
  /// thread track, and parent/child causal links are emitted as flow
  /// events ("s"/"f" pairs) so the UI draws arrows across seams.
  void export_chrome(std::ostream& out) const;

 private:
  void record(sim::TimePoint ts, sim::Duration dur, Category c,
              const char* name, const CausalContext& ctx,
              std::initializer_list<Attr> attrs);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;  // allocated on first record
  std::size_t head_ = 0;          // next write slot
  std::size_t count_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t next_span_id_ = 1;
  std::array<std::uint64_t, kCategoryCount> dropped_by_cat_{};
  std::uint16_t mask_ = (1u << kCategoryCount) - 1;  // all categories on
  bool master_enabled_ = true;
};

}  // namespace coop::obs
