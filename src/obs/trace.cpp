#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <unordered_map>

namespace coop::obs {

namespace {

void put_attr_value(std::ostream& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out << buf;
}

void put_args(std::ostream& out, const TraceEvent& e) {
  out << '{';
  for (std::uint8_t i = 0; i < e.attr_count; ++i) {
    if (i > 0) out << ',';
    out << '"' << e.attrs[i].key << "\":";
    put_attr_value(out, e.attrs[i].value);
  }
  if (e.ctx.valid()) {
    if (e.attr_count > 0) out << ',';
    out << "\"trace\":" << e.ctx.trace_id << ",\"span\":" << e.ctx.span_id
        << ",\"parent\":" << e.ctx.parent_span;
  }
  out << '}';
}

/// Chrome thread id for a category: one track per category keeps the
/// timeline readable and gives flow events unambiguous anchor slices.
int chrome_tid(Category c) noexcept { return static_cast<int>(c) + 1; }

/// Maps a keep rate to a 64-bit comparison threshold.  Rates >= 1 return
/// the kSampleAlways sentinel (no hash on the hot path); rates <= 0 (or
/// NaN) return 0 (keep nothing).  The 2^53-then-shift dance keeps the
/// double -> u64 conversion exact and in range.
std::uint64_t rate_to_threshold(double r) noexcept {
  if (!(r > 0.0)) return 0;
  if (r >= 1.0) return ~std::uint64_t{0};
  const double scaled = r * 9007199254740992.0;  // r * 2^53, < 2^53
  std::uint64_t t = static_cast<std::uint64_t>(scaled) << 11;
  if (t == ~std::uint64_t{0}) --t;  // never collide with the sentinel
  if (t == 0) t = 1;                // a positive rate keeps a sliver
  return t;
}

/// Process-wide count of ring-capacity requests clamped to kMaxCapacity.
std::uint64_t g_cap_clamps = 0;

std::size_t clamp_capacity(std::size_t cap) noexcept {
  if (cap == 0) return 1;
  if (cap > Tracer::kMaxCapacity) {
    ++g_cap_clamps;
    return Tracer::kMaxCapacity;
  }
  return cap;
}

}  // namespace

const char* category_name(Category c) noexcept {
  switch (c) {
    case Category::kSim:
      return "sim";
    case Category::kNet:
      return "net";
    case Category::kRpc:
      return "rpc";
    case Category::kGroup:
      return "group";
    case Category::kLock:
      return "lock";
    case Category::kStream:
      return "stream";
    case Category::kApp:
      return "app";
    case Category::kFault:
      return "fault";
    case Category::kAwareness:
      return "awareness";
    case Category::kDurable:
      return "durable";
  }
  return "?";
}

bool category_from_name(const char* begin, const char* end,
                        Category& out) noexcept {
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    const char* name = category_name(static_cast<Category>(c));
    std::size_t i = 0;
    while (name[i] != '\0' && begin + i != end && name[i] == begin[i]) ++i;
    if (name[i] == '\0' && begin + i == end) {
      out = static_cast<Category>(c);
      return true;
    }
  }
  return false;
}

SampleConfig SampleConfig::from_env() noexcept {
  SampleConfig cfg;
  if (const char* env = std::getenv("COOP_TRACE_SAMPLE_SEED")) {
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') cfg.seed = seed;
  }
  const char* env = std::getenv("COOP_TRACE_SAMPLE");
  if (env == nullptr || *env == '\0') return cfg;

  // Global form: the whole value is one number.
  {
    char* end = nullptr;
    const double r = std::strtod(env, &end);
    if (end != env && *end == '\0') {
      cfg.set_all(r);
      return cfg;
    }
  }

  // Per-category form: "name=rate[,name=rate...]", "*" = every category.
  // Unknown names and malformed tokens are ignored (observability config
  // must never take a run down).
  const char* p = env;
  while (*p != '\0') {
    const char* tok_end = p;
    while (*tok_end != '\0' && *tok_end != ',') ++tok_end;
    const char* eq = p;
    while (eq != tok_end && *eq != '=') ++eq;
    if (eq != tok_end) {
      char* end = nullptr;
      const double r = std::strtod(eq + 1, &end);
      // end == eq + 1 is strtod's "no conversion" case: an empty or
      // non-numeric value must be ignored, not read as rate 0.
      if (end != eq + 1 && end == tok_end) {
        Category c;
        if (eq - p == 1 && *p == '*') {
          cfg.set_all(r);
        } else if (category_from_name(p, eq, c)) {
          cfg.rate[static_cast<std::size_t>(c)] = r;
        }
      }
    }
    p = *tok_end == ',' ? tok_end + 1 : tok_end;
  }
  return cfg;
}

std::size_t Tracer::default_capacity() noexcept {
  // Read the environment on every call (cheap: construction-time only) so
  // tests and harnesses can adjust the cap between tracer instances.
  if (const char* env = std::getenv("COOP_TRACE_CAP")) {
    char* end = nullptr;
    const unsigned long long cap = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && cap > 0) {
      return clamp_capacity(static_cast<std::size_t>(
          cap > kMaxCapacity ? kMaxCapacity + 1 : cap));
    }
  }
  return kDefaultCapacity;
}

std::uint64_t Tracer::cap_clamps() noexcept { return g_cap_clamps; }

Tracer::Tracer(std::size_t capacity) : capacity_(clamp_capacity(capacity)) {
  set_sampling(SampleConfig::from_env());
  // COOP_TRACE=0 master-disables every tracer at construction — the
  // baseline configuration for the obs-overhead gate.
  if (const char* env = std::getenv("COOP_TRACE")) {
    if (env[0] == '0' && env[1] == '\0') master_enabled_ = false;
  }
}

void Tracer::set_sampling(const SampleConfig& cfg) noexcept {
  sample_cfg_ = cfg;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    cat_[c].threshold = rate_to_threshold(cfg.rate[c]);
    reset_nonctx(c);
  }
}

bool Tracer::would_sample(Category c, std::uint64_t trace_id) const noexcept {
  const std::uint64_t th = cat_[static_cast<std::size_t>(c)].threshold;
  if (th == kSampleAlways) return true;
  return detail::sample_mix(trace_id ^ sample_cfg_.seed) < th;
}

void Tracer::record_kept(sim::TimePoint ts, sim::Duration dur, Category c,
                         const char* name, const CausalContext& ctx,
                         std::initializer_list<Attr> attrs) {
  // The inline record() already made the keep decision; everything that
  // reaches here is stored.
  ++cat_[static_cast<std::size_t>(c)].sampled;
  if (ring_.empty()) ring_.resize(capacity_);
  TraceEvent& e = ring_[head_];
  if (count_ == capacity_) {
    // Overwriting the oldest record: account the eviction to its seam.
    ++dropped_by_cat_[static_cast<std::size_t>(e.category)];
  }
  e.ts = ts;
  e.dur = dur;
  e.category = c;
  e.name = name;
  e.ctx = ctx;
  e.attr_count = 0;
  for (const Attr& a : attrs) {
    if (e.attr_count >= e.attrs.size()) break;
    e.attrs[e.attr_count++] = a;
  }
  // Conditional wrap, not `% capacity_`: record() runs once per kernel
  // step, and the capacity is runtime-chosen so the modulo is a real
  // integer division on the hottest path in the tracer.
  if (++head_ == capacity_) head_ = 0;
  if (count_ < capacity_) ++count_;
  ++recorded_;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest record sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start = count_ == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

void Tracer::export_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : snapshot()) {
    out << "{\"ts\":" << e.ts << ",\"dur\":" << e.dur << ",\"cat\":\""
        << category_name(e.category) << "\",\"name\":\"" << e.name
        << "\",\"args\":";
    put_args(out, e);
    out << "}\n";
  }
}

void Tracer::export_chrome(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();

  // First record index per span id (parents may share an id with a later
  // completion record; flows anchor at the earliest occurrence), plus the
  // set of spans referenced as someone's parent — those must be exported
  // as slices (ph "X") even when instantaneous, because Perfetto only
  // attaches flow arrows to slices.
  std::unordered_map<std::uint64_t, std::size_t> first_of_span;
  std::unordered_map<std::uint64_t, bool> is_parent;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (!e.ctx.valid()) continue;
    first_of_span.emplace(e.ctx.span_id, i);
    if (e.ctx.parent_span != 0) is_parent[e.ctx.parent_span] = true;
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ',';
    first = false;
    out << '\n';
  };

  // Name the per-category tracks.
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << chrome_tid(static_cast<Category>(c))
        << ",\"args\":{\"name\":\""
        << category_name(static_cast<Category>(c)) << "\"}}";
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const int tid = chrome_tid(e.category);
    // Causal records that anchor a flow endpoint are promoted from
    // instants to 1 us slices so arrows have something to attach to.
    const bool anchors_flow =
        e.ctx.valid() &&
        (e.ctx.parent_span != 0 ||
         (is_parent.count(e.ctx.span_id) != 0 &&
          first_of_span.at(e.ctx.span_id) == i));
    const sim::Duration dur = e.dur > 0 ? e.dur : (anchors_flow ? 1 : 0);
    sep();
    out << "{\"name\":\"" << e.name << "\",\"cat\":\""
        << category_name(e.category) << "\",\"ph\":\""
        << (dur > 0 ? 'X' : 'i') << "\",\"ts\":" << e.ts;
    if (dur > 0)
      out << ",\"dur\":" << dur;
    else
      out << ",\"s\":\"t\"";  // instant scope: thread
    out << ",\"pid\":1,\"tid\":" << tid << ",\"args\":";
    put_args(out, e);
    out << '}';

    // Emit the causal link parent -> this record as a flow pair.  The
    // child's span id names the arrow (unique per tracer), the start
    // anchors inside the parent's slice, the finish inside this one.
    if (e.ctx.valid() && e.ctx.parent_span != 0) {
      const auto pit = first_of_span.find(e.ctx.parent_span);
      if (pit != first_of_span.end()) {
        const TraceEvent& p = events[pit->second];
        sep();
        out << "{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
            << e.ctx.span_id << ",\"ts\":" << p.ts
            << ",\"pid\":1,\"tid\":" << chrome_tid(p.category) << "}";
        sep();
        out << "{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":"
               "\"e\",\"id\":"
            << e.ctx.span_id << ",\"ts\":" << e.ts
            << ",\"pid\":1,\"tid\":" << tid << "}";
      }
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace coop::obs
