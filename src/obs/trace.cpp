#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace coop::obs {

namespace {

void put_attr_value(std::ostream& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out << buf;
}

void put_args(std::ostream& out, const TraceEvent& e) {
  out << '{';
  for (std::uint8_t i = 0; i < e.attr_count; ++i) {
    if (i > 0) out << ',';
    out << '"' << e.attrs[i].key << "\":";
    put_attr_value(out, e.attrs[i].value);
  }
  out << '}';
}

}  // namespace

const char* category_name(Category c) noexcept {
  switch (c) {
    case Category::kSim:
      return "sim";
    case Category::kNet:
      return "net";
    case Category::kRpc:
      return "rpc";
    case Category::kGroup:
      return "group";
    case Category::kLock:
      return "lock";
    case Category::kStream:
      return "stream";
    case Category::kApp:
      return "app";
  }
  return "?";
}

void Tracer::record(sim::TimePoint ts, sim::Duration dur, Category c,
                    const char* name, std::initializer_list<Attr> attrs) {
  if (!enabled(c)) return;
  if (ring_.empty()) ring_.resize(capacity_);
  TraceEvent& e = ring_[head_];
  e.ts = ts;
  e.dur = dur;
  e.category = c;
  e.name = name;
  e.attr_count = 0;
  for (const Attr& a : attrs) {
    if (e.attr_count >= e.attrs.size()) break;
    e.attrs[e.attr_count++] = a;
  }
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
  ++recorded_;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest record sits at head_ once the ring has wrapped, else at 0.
  const std::size_t start = count_ == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

void Tracer::export_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : snapshot()) {
    out << "{\"ts\":" << e.ts << ",\"dur\":" << e.dur << ",\"cat\":\""
        << category_name(e.category) << "\",\"name\":\"" << e.name
        << "\",\"args\":";
    put_args(out, e);
    out << "}\n";
  }
}

void Tracer::export_chrome(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : snapshot()) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":\"" << e.name << "\",\"cat\":\""
        << category_name(e.category) << "\",\"ph\":\""
        << (e.dur > 0 ? 'X' : 'i') << "\",\"ts\":" << e.ts;
    if (e.dur > 0)
      out << ",\"dur\":" << e.dur;
    else
      out << ",\"s\":\"t\"";  // instant scope: thread
    out << ",\"pid\":1,\"tid\":1,\"args\":";
    put_args(out, e);
    out << '}';
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace coop::obs
