#include "obs/slo.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coop::obs {

SloWatchdog::SloWatchdog(Timeseries& ts, Tracer& tracer,
                         MetricsRegistry& metrics)
    : ts_(ts), tracer_(tracer), metrics_(metrics) {
  ts_.set_observer(&SloWatchdog::on_window, this);
}

void SloWatchdog::add_rule(SloRule rule) {
  Entry e;
  e.rule = std::move(rule);
  // Resolve lazily if the series is not registered yet — modules may
  // register feeds after the rules are declared.
  e.series_id = ts_.find(e.rule.series.c_str());
  rules_.push_back(std::move(e));
  metrics_.gauge("slo." + rules_.back().rule.name + ".healthy").set(1);
}

void SloWatchdog::on_window(void* self, const Timeseries& ts,
                            const Timeseries::Window& w) {
  static_cast<SloWatchdog*>(self)->evaluate(ts, w);
}

void SloWatchdog::evaluate(const Timeseries& ts, const Timeseries::Window& w) {
  const double window_sec =
      static_cast<double>(ts.window()) / 1e6;
  const sim::TimePoint w_end = w.t0 + ts.window();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    Entry& e = rules_[i];
    const SloRule& r = e.rule;
    if (w.t0 < r.active_from || w.t0 >= r.active_until) continue;
    if (e.series_id == Timeseries::kInvalidSeries)
      e.series_id = ts.find(r.series.c_str());
    if (e.series_id == Timeseries::kInvalidSeries) continue;

    const bool have_cell = e.series_id < w.n_cells;
    static const Timeseries::Cell kEmpty{};
    const Timeseries::Cell& c =
        have_cell ? ts.cells(w)[e.series_id] : kEmpty;

    double value = 0;
    bool breach = false;
    switch (r.kind) {
      case SloRule::Kind::kP50Ceiling:
      case SloRule::Kind::kP95Ceiling:
      case SloRule::Kind::kP99Ceiling:
        // A percentile objective is undefined on a window with no
        // samples; skip rather than manufacture a breach or a pass.
        if (!c.has_values || c.count == 0) continue;
        value = r.kind == SloRule::Kind::kP50Ceiling   ? c.p50
                : r.kind == SloRule::Kind::kP95Ceiling ? c.p95
                                                       : c.p99;
        breach = value > r.threshold;
        break;
      case SloRule::Kind::kRateFloor:
        // An idle window IS a goodput failure: rate 0.
        value = static_cast<double>(c.count) / window_sec;
        breach = value < r.threshold;
        break;
      case SloRule::Kind::kRateCeiling:
        value = static_cast<double>(c.count) / window_sec;
        breach = value > r.threshold;
        break;
    }

    RuleState& s = e.state;
    ++s.evaluated;
    if (breach) {
      ++s.breach_windows;
      metrics_.counter("slo." + r.name + ".breach_windows").inc();
      ++s.consec_breach;
      s.consec_ok = 0;
      if (s.healthy && s.consec_breach >= r.trip_windows) {
        s.healthy = false;
        ++s.transitions;
        metrics_.counter("slo." + r.name + ".trips").inc();
        metrics_.gauge("slo." + r.name + ".healthy").set(0);
        tracer_.event(w_end, Category::kApp, "slo_breach",
                      {{"rule", static_cast<double>(i)},
                       {"value", value},
                       {"threshold", r.threshold}});
      }
    } else {
      ++s.consec_ok;
      s.consec_breach = 0;
      if (!s.healthy && s.consec_ok >= r.recover_windows) {
        s.healthy = true;
        ++s.transitions;
        metrics_.counter("slo." + r.name + ".recoveries").inc();
        metrics_.gauge("slo." + r.name + ".healthy").set(1);
        tracer_.event(w_end, Category::kApp, "slo_recovered",
                      {{"rule", static_cast<double>(i)},
                       {"value", value},
                       {"threshold", r.threshold}});
      }
    }
  }
}

std::uint64_t SloWatchdog::transitions_total() const noexcept {
  std::uint64_t n = 0;
  for (const Entry& e : rules_) n += e.state.transitions;
  return n;
}

bool SloWatchdog::violating(const Entry& e) const noexcept {
  if (e.state.breach_windows > e.rule.allowed_breach_windows) return true;
  if (e.rule.must_end_healthy && e.state.evaluated > 0 && !e.state.healthy)
    return true;
  return false;
}

std::size_t SloWatchdog::violations() const {
  std::size_t n = 0;
  for (const Entry& e : rules_)
    if (violating(e)) ++n;
  return n;
}

std::vector<std::string> SloWatchdog::violation_messages() const {
  std::vector<std::string> out;
  for (const Entry& e : rules_) {
    if (!violating(e)) continue;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "SLO '%s' on %s: %llu/%llu breach windows (budget %llu)%s",
                  e.rule.name.c_str(), e.rule.series.c_str(),
                  static_cast<unsigned long long>(e.state.breach_windows),
                  static_cast<unsigned long long>(e.state.evaluated),
                  static_cast<unsigned long long>(
                      e.rule.allowed_breach_windows),
                  e.state.healthy ? "" : ", ended unhealthy");
    out.emplace_back(buf);
  }
  return out;
}

}  // namespace coop::obs
