#include "obs/metrics.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <vector>

namespace coop::obs {

namespace {

/// JSON number formatting: integral values print without a fractional
/// part so snapshots are stable across platforms; everything else gets
/// shortest-ish %.6g formatting.
void put_number(std::ostream& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out << "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out << buf;
}

void put_key(std::ostream& out, const std::string& name) {
  out << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << "\":";
}

}  // namespace

MetricsRegistry::Metric& MetricsRegistry::slot(const std::string& name,
                                               MetricKind kind) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    assert(it->second.kind == kind &&
           "metric re-registered under a different kind");
    if (it->second.kind == kind) return it->second;
    // Release fallback: park the conflicting registration under a
    // suffixed key rather than hand out a mismatched reference.
    return slot(name + "!kind_conflict", kind);
  }
  Metric& m = metrics_[name];
  m.kind = kind;
  return m;
}

util::Counter& MetricsRegistry::counter(const std::string& name) {
  Metric& m = slot(name, MetricKind::kCounter);
  if (!m.counter) m.counter = std::make_unique<util::Counter>();
  return *m.counter;
}

util::Gauge& MetricsRegistry::gauge(const std::string& name) {
  Metric& m = slot(name, MetricKind::kGauge);
  if (!m.gauge) m.gauge = std::make_unique<util::Gauge>();
  return *m.gauge;
}

util::Summary& MetricsRegistry::summary(const std::string& name) {
  Metric& m = slot(name, MetricKind::kSummary);
  if (!m.summary) m.summary = std::make_unique<util::Summary>();
  return *m.summary;
}

util::Histogram& MetricsRegistry::histogram(const std::string& name,
                                            double lo, double hi,
                                            std::size_t buckets) {
  Metric& m = slot(name, MetricKind::kHistogram);
  if (!m.histogram) m.histogram = std::make_unique<util::Histogram>(lo, hi,
                                                                    buckets);
  return *m.histogram;
}

void MetricsRegistry::expose(const std::string& name,
                             std::function<double()> poll) {
  // A module re-created at the same identity (e.g. one channel per bench
  // iteration) re-exposes a name its predecessor retired into a gauge;
  // resume live polling — the new instance's view wins.
  auto it = metrics_.find(name);
  if (it != metrics_.end() && it->second.kind == MetricKind::kGauge) {
    it->second.kind = MetricKind::kPolled;
    it->second.gauge.reset();
    it->second.poll = std::move(poll);
    return;
  }
  Metric& m = slot(name, MetricKind::kPolled);
  m.poll = std::move(poll);
}

void MetricsRegistry::retire_polled(const std::string& prefix) {
  for (auto it = metrics_.lower_bound(prefix); it != metrics_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second.kind == MetricKind::kPolled) {
      const double last = it->second.poll ? it->second.poll() : 0.0;
      it->second.kind = MetricKind::kGauge;
      it->second.poll = nullptr;
      it->second.gauge = std::make_unique<util::Gauge>();
      it->second.gauge->set(last);
    }
    ++it;
  }
}

double MetricsRegistry::value(const std::string& name) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0.0;
  const Metric& m = it->second;
  switch (m.kind) {
    case MetricKind::kCounter:
      return m.counter ? static_cast<double>(m.counter->value()) : 0.0;
    case MetricKind::kGauge:
      return m.gauge ? m.gauge->value() : 0.0;
    case MetricKind::kPolled:
      return m.poll ? m.poll() : 0.0;
    case MetricKind::kSummary:
    case MetricKind::kHistogram:
      return 0.0;
  }
  return 0.0;
}

void MetricsRegistry::for_each(
    const std::function<void(const std::string&, MetricKind)>& fn) const {
  for (const auto& [name, m] : metrics_) fn(name, m.kind);
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (!first) out << ',';
    first = false;
    put_key(out, name);
    switch (m.kind) {
      case MetricKind::kCounter:
        put_number(out, m.counter ? static_cast<double>(m.counter->value())
                                  : 0.0);
        break;
      case MetricKind::kGauge:
        put_number(out, m.gauge ? m.gauge->value() : 0.0);
        break;
      case MetricKind::kPolled:
        put_number(out, m.poll ? m.poll() : 0.0);
        break;
      case MetricKind::kSummary: {
        const util::Summary& s = *m.summary;
        out << "{\"count\":" << s.count() << ",\"mean\":";
        put_number(out, s.mean());
        out << ",\"min\":";
        put_number(out, s.min());
        out << ",\"max\":";
        put_number(out, s.max());
        out << ",\"p50\":";
        put_number(out, s.p50());
        out << ",\"p95\":";
        put_number(out, s.p95());
        out << ",\"p99\":";
        put_number(out, s.p99());
        out << '}';
        break;
      }
      case MetricKind::kHistogram: {
        const util::Histogram& h = *m.histogram;
        out << "{\"lo\":";
        put_number(out, h.lo());
        out << ",\"hi\":";
        put_number(out, h.hi());
        out << ",\"total\":" << h.total() << ",\"nan\":" << h.nan_count();
        // Same percentile quad CriticalPath reports, so histogram- and
        // summary-backed latencies read the same in artifacts.
        out << ",\"p50\":";
        put_number(out, h.quantile(0.50));
        out << ",\"p95\":";
        put_number(out, h.quantile(0.95));
        out << ",\"p99\":";
        put_number(out, h.quantile(0.99));
        out << ",\"max\":";
        put_number(out, h.max_seen());
        out << ",\"buckets\":[";
        bool bfirst = true;
        for (std::uint64_t c : h.buckets()) {
          if (!bfirst) out << ',';
          bfirst = false;
          out << c;
        }
        out << "]}";
        break;
      }
    }
  }
  out << '}';
  return out.str();
}

}  // namespace coop::obs
