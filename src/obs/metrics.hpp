// Platform-wide metrics registry — the management/QoS monitoring substrate
// the paper calls for in §4.2.1 ("monitoring of usage patterns") and §4.2.2
// (QoS monitoring).
//
// Modules register named, hierarchically-keyed instruments ("net.sent",
// "rpc.client.1:1.rtt_us") instead of scattering ad-hoc Counter/Summary
// fields per struct.  Two integration styles are supported:
//
//   * owned metrics — counter()/gauge()/summary()/histogram() create the
//     instrument inside the registry and hand back a stable reference; the
//     module updates it directly and its public stats accessor becomes a
//     thin view over registry storage.  Values survive module teardown,
//     which is what lets the bench harness snapshot an experiment after
//     its Platform has been destroyed.
//   * polled views — expose() registers a callback over a value that keeps
//     living in the module's own stats struct (the hot storage).  The
//     registry reads through the callback at snapshot time.  Modules must
//     retire_polled() their prefix on destruction; retirement freezes each
//     view's final value into an owned gauge so history is not lost.
//
// Keys are dot-separated paths; the registry itself imposes no schema, it
// only guarantees deterministic (sorted) snapshot order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "util/stats.hpp"

namespace coop::obs {

/// What kind of instrument a registry slot holds.
enum class MetricKind : std::uint8_t {
  kCounter,
  kGauge,
  kSummary,
  kHistogram,
  kPolled,
};

/// Named, hierarchically-keyed instruments shared by every module of a
/// platform.  Not copyable; references returned by the accessors stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under @p name, creating it on first
  /// request.  Requesting an existing name as a different kind is a
  /// registration bug (asserts in debug builds).
  util::Counter& counter(const std::string& name);

  /// Returns the gauge registered under @p name, creating it on demand.
  util::Gauge& gauge(const std::string& name);

  /// Returns the summary registered under @p name, creating it on demand.
  util::Summary& summary(const std::string& name);

  /// Returns the histogram registered under @p name; @p lo/@p hi/@p buckets
  /// only apply on first creation.
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets);

  /// Registers a polled view: @p poll is read at snapshot time and must
  /// stay callable until retire_polled() removes it.  Re-exposing a name
  /// that was retired into a gauge resumes live polling (the newest
  /// instance's view wins).
  void expose(const std::string& name, std::function<double()> poll);

  /// Removes every polled view whose name starts with @p prefix, freezing
  /// each one's final value into an owned gauge of the same name.  Modules
  /// call this from their destructors.
  void retire_polled(const std::string& prefix);

  [[nodiscard]] bool contains(const std::string& name) const {
    return metrics_.count(name) != 0;
  }

  /// Number of registered instruments (all kinds).
  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }

  /// Current numeric value of a counter/gauge/polled view; 0 if the name
  /// is unknown or the instrument is not scalar.
  [[nodiscard]] double value(const std::string& name) const;

  /// Visits (name, kind) pairs in sorted key order.
  void for_each(
      const std::function<void(const std::string&, MetricKind)>& fn) const;

  /// Whole-registry snapshot as one JSON object, keys sorted.  Counters,
  /// gauges and polled views serialize as numbers; summaries and
  /// histograms as objects with their derived statistics.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Metric {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<util::Counter> counter;
    std::unique_ptr<util::Gauge> gauge;
    std::unique_ptr<util::Summary> summary;
    std::unique_ptr<util::Histogram> histogram;
    std::function<double()> poll;
  };

  Metric& slot(const std::string& name, MetricKind kind);

  std::map<std::string, Metric> metrics_;
};

}  // namespace coop::obs
