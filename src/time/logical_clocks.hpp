// Logical time: Lamport clocks, vector clocks and causality tests.
//
// Vector clocks drive three parts of coop: the causal-ordering layer of the
// group communication stack (groups/ordering.hpp), the state vectors of the
// dOPT operational-transformation engine (ccontrol/ot.hpp), and the version
// vectors used for conflict detection when a mobile host reintegrates after
// disconnection (mobile/reintegration.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/codec.hpp"

namespace coop::logical {

/// Scalar Lamport clock: totally ordered event timestamps consistent with
/// causality (but not characterizing it — use VectorClock for that).
class LamportClock {
 public:
  /// Local event: advance and return the new timestamp.
  std::uint64_t tick() noexcept { return ++time_; }

  /// Message receipt: merge the sender's timestamp, then tick.
  std::uint64_t merge(std::uint64_t received) noexcept {
    time_ = std::max(time_, received);
    return ++time_;
  }

  [[nodiscard]] std::uint64_t time() const noexcept { return time_; }

 private:
  std::uint64_t time_ = 0;
};

/// Causality relation between two vector clocks.
enum class Causality {
  kEqual,       ///< identical histories
  kBefore,      ///< lhs happened-before rhs
  kAfter,       ///< rhs happened-before lhs
  kConcurrent,  ///< neither dominates: a real conflict
};

/// Fixed-width vector clock over a known set of sites (indices 0..n-1).
///
/// coop sessions know their membership when a clock is created; dynamic
/// membership is handled one level up (the groups module re-issues clocks on
/// view change), which keeps the hot comparison path allocation-free.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n_sites) : v_(n_sites, 0) {}

  /// Local event at @p site.
  void tick(std::size_t site) {
    ensure(site + 1);
    ++v_[site];
  }

  /// Component for @p site (0 if beyond current width).
  [[nodiscard]] std::uint64_t at(std::size_t site) const noexcept {
    return site < v_.size() ? v_[site] : 0;
  }

  void set(std::size_t site, std::uint64_t value) {
    ensure(site + 1);
    v_[site] = value;
  }

  /// Pointwise maximum (message receipt).
  void merge(const VectorClock& other) {
    ensure(other.v_.size());
    for (std::size_t i = 0; i < other.v_.size(); ++i)
      v_[i] = std::max(v_[i], other.v_[i]);
  }

  /// Full causality comparison.
  [[nodiscard]] Causality compare(const VectorClock& other) const {
    bool less = false;
    bool greater = false;
    const std::size_t n = std::max(v_.size(), other.v_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t a = at(i);
      const std::uint64_t b = other.at(i);
      if (a < b) less = true;
      if (a > b) greater = true;
    }
    if (less && greater) return Causality::kConcurrent;
    if (less) return Causality::kBefore;
    if (greater) return Causality::kAfter;
    return Causality::kEqual;
  }

  /// True if this clock causally dominates or equals @p other.
  [[nodiscard]] bool dominates(const VectorClock& other) const {
    const Causality c = compare(other);
    return c == Causality::kAfter || c == Causality::kEqual;
  }

  /// True iff the clocks are causally unrelated.
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const {
    return compare(other) == Causality::kConcurrent;
  }

  /// Causal-delivery test: can a message stamped @p msg from @p sender be
  /// delivered at a site whose clock is *this?  Requires
  /// msg[sender] == this[sender]+1 and msg[k] <= this[k] for k != sender.
  [[nodiscard]] bool deliverable_from(const VectorClock& msg,
                                      std::size_t sender) const {
    const std::size_t n = std::max(v_.size(), msg.v_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t need = msg.at(i);
      if (i == sender) {
        if (need != at(i) + 1) return false;
      } else if (need > at(i)) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }

  /// Sum of all components — total events seen; used by OT scheduling.
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t s = 0;
    for (auto x : v_) s += x;
    return s;
  }

  bool operator==(const VectorClock& other) const {
    return compare(other) == Causality::kEqual;
  }

  void encode(util::Writer& w) const {
    w.put_vector<std::uint64_t>(v_);
  }

  static VectorClock decode(util::Reader& r) {
    VectorClock c;
    c.v_ = r.get_vector<std::uint64_t>();
    return c;
  }

  /// Human-readable "[1,0,3]" form for logs and test diagnostics.
  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < v_.size(); ++i) {
      if (i > 0) s += ',';
      s += std::to_string(v_[i]);
    }
    s += ']';
    return s;
  }

 private:
  void ensure(std::size_t n) {
    if (v_.size() < n) v_.resize(n, 0);
  }

  std::vector<std::uint64_t> v_;
};

/// Version vectors for replica divergence detection are vector clocks under
/// another name; the alias keeps mobile-module code self-describing.
using VersionVector = VectorClock;

}  // namespace coop::logical
