#include "streams/sync.hpp"

#include <cmath>
#include <utility>

namespace coop::streams {

EventSync::EventSync(sim::Simulator& sim, MediaSink& sink,
                     sim::Duration poll)
    : sim_(sim), sink_(sink), timer_(sim, poll, [this] { this->poll(); }) {
  timer_.start();
}

EventSync::~EventSync() { timer_.stop(); }

void EventSync::at(std::int64_t media_time, CueFn fn) {
  cues_.emplace(media_time, std::move(fn));
}

void EventSync::poll() {
  const std::int64_t pos = sink_.playout_position();
  if (pos < 0) return;
  while (!cues_.empty() && cues_.begin()->first <= pos) {
    auto node = cues_.extract(cues_.begin());
    errors_.add(static_cast<double>(pos - node.key()));
    node.mapped()(pos);
  }
}

ContinuousSync::ContinuousSync(sim::Simulator& sim, MediaSink& master,
                               MediaSink& slave, Config config)
    : sim_(sim),
      master_(master),
      slave_(slave),
      config_(config),
      timer_(sim, config.check_period, [this] { check(); }) {}

ContinuousSync::~ContinuousSync() { timer_.stop(); }

void ContinuousSync::check() {
  const std::int64_t m = master_.playout_position();
  const std::int64_t s = slave_.playout_position();
  if (m < 0 || s < 0) return;  // one stream has not started playing out
  const std::int64_t skew = m - s;
  skew_.add(static_cast<double>(skew));
  if (std::llabs(skew) > config_.skew_bound) {
    ++corrections_;
    const auto step = static_cast<sim::Duration>(
        static_cast<double>(skew) * config_.correction_gain);
    slave_.skew_adjust(step);
  }
}

}  // namespace coop::streams
