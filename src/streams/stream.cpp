#include "streams/stream.hpp"

#include <algorithm>
#include <utility>

#include "util/codec.hpp"

namespace coop::streams {

// -------------------------------------------------------------- MediaSource

MediaSource::MediaSource(sim::Simulator& sim, std::uint32_t stream_id,
                         QosSpec spec)
    : sim_(sim),
      stream_id_(stream_id),
      spec_(spec),
      fps_(spec.fps),
      frame_bytes_(spec.frame_bytes),
      timer_(sim, static_cast<sim::Duration>(1e6 / spec.fps),
             [this] { tick(); }) {}

MediaSource::~MediaSource() { timer_.stop(); }

void MediaSource::start() { timer_.start(); }
void MediaSource::stop() { timer_.stop(); }

void MediaSource::set_fps(double fps) {
  fps_ = std::clamp(fps, spec_.min_fps, spec_.fps);
  timer_.set_period(static_cast<sim::Duration>(1e6 / fps_));
}

void MediaSource::tick() {
  Frame f;
  f.stream_id = stream_id_;
  f.seq = next_seq_++;
  f.captured_at = sim_.now();
  f.size = frame_bytes_;
  if (emit_) emit_(f);
}

// ---------------------------------------------------------------- MediaSink

MediaSink::MediaSink(net::Network& net, net::Address self,
                     sim::Duration prebuffer)
    : net_(net), self_(self), prebuffer_(prebuffer) {
  net_.attach(self_, *this);
}

MediaSink::~MediaSink() { net_.detach(self_); }

void MediaSink::on_message(const net::Message& msg) {
  const std::optional<Frame> f = StreamBinding::decode(msg.payload);
  if (!f) return;
  const sim::TimePoint now = net_.simulator().now();
  const sim::Duration latency = now - f->captured_at;

  ++frames_;
  ++window_.frames;
  window_.latency_us.add(static_cast<double>(latency));
  if (latency > latency_bound_) ++window_.late;
  if (any_frame_) {
    window_.interarrival_us.add(static_cast<double>(now - last_arrival_));
  } else {
    any_frame_ = true;
    playout_origin_ = now + prebuffer_;
  }
  last_arrival_ = now;
  if (f->seq > highest_seq_seen_ + 1 && frames_ > 1) {
    const std::uint64_t gap = f->seq - highest_seq_seen_ - 1;
    lost_ += gap;
    window_.lost += gap;
  }
  highest_seq_seen_ = std::max(highest_seq_seen_, f->seq);
  // Capture -> sink arrival: the end-to-end frame latency the QoS monitor
  // samples, closed under the frame's trace so Perfetto links emit ->
  // hops -> this span.
  obs::Tracer& tracer = net_.obs().tracer;
  tracer.span(f->captured_at, now, obs::Category::kStream, "frame",
              msg.ctx.valid() ? msg.ctx.child(tracer.mint_id())
                              : obs::CausalContext{},
              {{"stream", static_cast<double>(f->stream_id)},
               {"seq", static_cast<double>(f->seq)},
               {"latency", static_cast<double>(latency)}});
  if (on_frame_) on_frame_(*f, latency);
}

std::int64_t MediaSink::playout_position() const {
  if (playout_origin_ < 0) return -1;
  const std::int64_t pos = net_.simulator().now() - playout_origin_;
  return pos < 0 ? -1 : pos;
}

MediaSink::WindowSamples MediaSink::drain_window() {
  WindowSamples out = std::move(window_);
  window_ = {};
  return out;
}

// ------------------------------------------------------------ StreamBinding

StreamBinding::StreamBinding(net::Network& net, MediaSource& source,
                             net::Address from, net::Address to)
    : net_(net), from_(from), to_(to) {
  source.on_emit([this](const Frame& f) { send(f); });
}

StreamBinding::StreamBinding(net::Network& net, MediaSource& source,
                             net::Address from, net::McastId group)
    : net_(net), from_(from), group_(group) {
  source.on_emit([this](const Frame& f) { send(f); });
}

std::string StreamBinding::encode(const Frame& f) {
  util::Writer w;
  w.put(static_cast<std::uint8_t>(0xF7))  // frame marker
      .put(f.stream_id)
      .put(f.seq)
      .put(f.captured_at)
      .put(static_cast<std::uint64_t>(f.size));
  return w.take();
}

std::optional<Frame> StreamBinding::decode(std::string_view payload) {
  util::Reader r(payload);
  if (r.get<std::uint8_t>() != 0xF7) return std::nullopt;
  Frame f;
  f.stream_id = r.get<std::uint32_t>();
  f.seq = r.get<std::uint64_t>();
  f.captured_at = r.get<sim::TimePoint>();
  f.size = static_cast<std::size_t>(r.get<std::uint64_t>());
  if (r.failed()) return std::nullopt;
  return f;
}

void StreamBinding::send(const Frame& f) {
  ++sent_;
  // Each frame emission is a user-action entry point: it roots a fresh
  // trace that the network hops and the sink's frame span descend from.
  obs::Tracer& tracer = net_.obs().tracer;
  const obs::CausalContext fctx = tracer.begin_trace();
  tracer.event(net_.simulator().now(), obs::Category::kStream, "emit", fctx,
               {{"stream", static_cast<double>(f.stream_id)},
                {"seq", static_cast<double>(f.seq)},
                {"bytes", static_cast<double>(f.size)}});
  net::Message msg;
  msg.src = from_;
  msg.payload = encode(f);
  msg.ctx = fctx;
  // The simulated media payload occupies f.size wire bytes.
  msg.wire_size = f.size + net::Message::kHeaderBytes;
  if (group_) {
    net_.multicast(*group_, std::move(msg));
  } else {
    msg.dst = *to_;
    net_.send(std::move(msg));
  }
}

// --------------------------------------------------------------- QosMonitor

QosMonitor::QosMonitor(sim::Simulator& sim, MediaSink& sink, QosSpec spec,
                       sim::Duration window)
    : sim_(sim),
      sink_(sink),
      spec_(spec),
      window_(window),
      timer_(sim, window, [this] { evaluate(); }) {
  sink_.set_latency_bound(spec.latency_bound);
  timer_.start();
}

QosMonitor::~QosMonitor() { timer_.stop(); }

void QosMonitor::evaluate() {
  const MediaSink::WindowSamples w = sink_.drain_window();
  QosReport report;
  report.frames = w.frames;
  report.achieved_fps =
      static_cast<double>(w.frames) / sim::to_sec(window_);
  report.mean_latency_us = w.latency_us.mean();
  report.p95_latency_us = w.latency_us.p95();
  report.jitter_us = w.interarrival_us.jitter();
  report.late_frames = w.late;
  report.lost_frames = w.lost;
  const QosVerdict verdict = compare(spec_, report);
  ++windows_;
  if (verdict != QosVerdict::kHealthy) ++violations_;
  if (report_) report_(report, verdict);
}

// ---------------------------------------------------------------- QosManager

QosManager::Admission QosManager::admit(const QosSpec& requested) {
  const double need = requested.bandwidth_bps();
  const double available = capacity_ - reserved_;
  if (need <= available) {
    reserved_ += need;
    return {true, requested};
  }
  // Counter-offer: the highest fps that fits, if it clears the floor.
  const double per_frame =
      static_cast<double>(requested.frame_bytes) * 8.0;
  const double fit_fps = per_frame > 0 ? available / per_frame : 0;
  if (fit_fps >= requested.min_fps) {
    QosSpec granted = requested;
    granted.fps = fit_fps;
    reserved_ += granted.bandwidth_bps();
    return {true, granted};
  }
  return {false, requested};
}

void QosManager::release(const QosSpec& granted) {
  reserved_ = std::max(0.0, reserved_ - granted.bandwidth_bps());
}

QosAdaptor::QosAdaptor(QosMonitor& monitor, QosManager& manager,
                       MediaSource& source, QosSpec contract)
    : monitor_(monitor),
      manager_(manager),
      source_(source),
      contract_(contract),
      operating_(contract) {
  monitor_.on_report([this](const QosReport& report, QosVerdict verdict) {
    if (const auto fps =
            manager_.react(contract_, source_.fps(), verdict)) {
      ++rescales_;
      source_.set_fps(*fps);
      operating_.fps = *fps;
      // Judge the next window against the operating point, not the
      // original contract; min_fps keeps the kUnacceptable floor intact.
      monitor_.set_spec(operating_);
    }
    if (on_window_) on_window_(report, verdict, source_.fps());
  });
}

std::optional<double> QosManager::react(const QosSpec& contract,
                                        double current_fps,
                                        QosVerdict verdict) {
  switch (verdict) {
    case QosVerdict::kHealthy: {
      if (current_fps >= contract.fps) return std::nullopt;
      // Additive increase: creep back toward the contract.
      return std::min(contract.fps, current_fps + contract.fps * 0.10);
    }
    case QosVerdict::kDegraded:
    case QosVerdict::kUnacceptable: {
      // Multiplicative decrease, floored at min_fps.
      const double next = std::max(contract.min_fps, current_fps * 0.5);
      if (next >= current_fps) return std::nullopt;
      return next;
    }
  }
  return std::nullopt;
}

}  // namespace coop::streams
