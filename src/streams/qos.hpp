// Quality-of-service vocabulary for continuous media (§4.2.2-ii).
//
// A QosSpec is the contract a stream binding is created with: the
// throughput, latency and jitter the application needs, plus the floor it
// can degrade to (scalable media).  A QosReport is what the monitor
// measures per window; compare() classifies the window against the
// contract so management can react.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.hpp"

namespace coop::streams {

/// The application's requested service level.
struct QosSpec {
  double fps = 25.0;                       ///< frames per second
  std::size_t frame_bytes = 4096;          ///< nominal frame size
  sim::Duration latency_bound = sim::msec(150);
  sim::Duration jitter_bound = sim::msec(30);
  /// Scalable-media floor: re-negotiation may reduce fps to this, never
  /// below (below it the medium's integrity is destroyed — §4.2.2-i).
  double min_fps = 5.0;

  /// Offered load in bits per second.
  [[nodiscard]] double bandwidth_bps() const {
    return fps * static_cast<double>(frame_bytes) * 8.0;
  }
};

/// One monitoring window's achieved service.
struct QosReport {
  double achieved_fps = 0;
  double mean_latency_us = 0;
  double p95_latency_us = 0;
  double jitter_us = 0;        ///< mean successive inter-arrival deviation
  std::uint64_t frames = 0;
  std::uint64_t late_frames = 0;   ///< latency over bound
  std::uint64_t lost_frames = 0;   ///< sequence gaps observed
};

/// Verdict of a window against the contract.
enum class QosVerdict : std::uint8_t {
  kHealthy,          ///< all bounds met
  kDegraded,         ///< a bound is violated but stream is alive
  kUnacceptable,     ///< below min_fps: integrity of the medium is gone
};

/// Classifies a window.  @p tolerance loosens the fps test slightly so
/// boundary jitter does not flap the verdict.
[[nodiscard]] inline QosVerdict compare(const QosSpec& spec,
                                        const QosReport& report,
                                        double tolerance = 0.85) {
  if (report.achieved_fps < spec.min_fps * tolerance)
    return QosVerdict::kUnacceptable;
  if (report.achieved_fps < spec.fps * tolerance)
    return QosVerdict::kDegraded;
  if (report.mean_latency_us >
      static_cast<double>(spec.latency_bound))
    return QosVerdict::kDegraded;
  if (report.jitter_us > static_cast<double>(spec.jitter_bound))
    return QosVerdict::kDegraded;
  return QosVerdict::kHealthy;
}

/// ODP interface compatibility checking (§4.2.2: "further research is
/// needed to identify approaches for the expression of quality of
/// service properties and compatibility checking between these
/// properties").  An offered stream interface satisfies a required one
/// iff it can deliver at least the required rate within the required
/// latency/jitter bounds.
[[nodiscard]] inline bool compatible(const QosSpec& offered,
                                     const QosSpec& required) {
  return offered.fps >= required.fps &&
         offered.latency_bound <= required.latency_bound &&
         offered.jitter_bound <= required.jitter_bound;
}

/// Contract negotiation between an offer and a requirement: the working
/// point both sides can live with, or nullopt when none exists.  The
/// rate is the lower of the two (the sink cannot consume more than it
/// asked for, the source cannot produce more than it offered) and must
/// clear the requirement's integrity floor; bounds take the tighter
/// requirement.
[[nodiscard]] inline std::optional<QosSpec> negotiate(
    const QosSpec& offered, const QosSpec& required) {
  if (offered.latency_bound > required.latency_bound) return std::nullopt;
  if (offered.jitter_bound > required.jitter_bound) return std::nullopt;
  const double fps = offered.fps < required.fps ? offered.fps : required.fps;
  if (fps < required.min_fps) return std::nullopt;
  QosSpec agreed = required;
  agreed.fps = fps;
  agreed.frame_bytes = offered.frame_bytes;
  return agreed;
}

}  // namespace coop::streams
