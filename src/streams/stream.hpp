// Stream interfaces and bindings — the ODP draft extension the paper
// describes (§4.2.2): continuous-media producers, consumers, and the
// binding object between them, with end-to-end QoS monitoring.
//
//   MediaSource  — emits frames at a rate; supports *media scaling*
//                  (fps / frame-size changes at runtime) so QoS
//                  management has a lever to pull.
//   StreamBinding— the explicit binding object: source address, sink
//                  address (or multicast group for §4.2.2-iv group
//                  communication of continuous media), and the QosSpec
//                  contract.
//   MediaSink    — receives frames, maintains arrival statistics and a
//                  playout clock used by the synchronization services.
//   QosMonitor   — windowed measurement at the sink; classifies each
//                  window against the contract and notifies the manager.
//   QosManager   — admission control against a capacity budget, plus
//                  dynamic re-negotiation: on degradation it scales the
//                  source down toward min_fps; on recovery it scales
//                  back up (§4.2.2: "Dynamic re-negotiation should also
//                  be supported").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "streams/qos.hpp"
#include "util/stats.hpp"

namespace coop::streams {

/// One media frame on the wire.
struct Frame {
  std::uint32_t stream_id = 0;
  std::uint64_t seq = 0;
  sim::TimePoint captured_at = 0;
  std::size_t size = 0;
};

/// Produces frames on a timer and hands them to a send hook.
class MediaSource {
 public:
  using EmitFn = std::function<void(const Frame&)>;

  MediaSource(sim::Simulator& sim, std::uint32_t stream_id, QosSpec spec);
  ~MediaSource();

  MediaSource(const MediaSource&) = delete;
  MediaSource& operator=(const MediaSource&) = delete;

  void on_emit(EmitFn fn) { emit_ = std::move(fn); }
  void start();
  void stop();

  /// Media scaling: change the frame rate (clamped to [min_fps, spec
  /// fps]).  Takes effect from the next frame.
  void set_fps(double fps);
  /// Media scaling: change the frame size (e.g. coarser quantization).
  void set_frame_bytes(std::size_t bytes) { frame_bytes_ = bytes; }

  [[nodiscard]] double fps() const noexcept { return fps_; }
  [[nodiscard]] const QosSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t frames_emitted() const noexcept {
    return next_seq_;
  }

 private:
  void tick();

  sim::Simulator& sim_;
  std::uint32_t stream_id_;
  QosSpec spec_;
  double fps_;
  std::size_t frame_bytes_;
  std::uint64_t next_seq_ = 0;
  EmitFn emit_;
  sim::PeriodicTimer timer_;
};

/// Receives frames; tracks arrival statistics and a playout position.
class MediaSink : public net::Endpoint {
 public:
  /// @p prebuffer delays playout start after the first frame so the
  /// jitter buffer can absorb arrival variance.
  MediaSink(net::Network& net, net::Address self,
            sim::Duration prebuffer = sim::msec(80));
  ~MediaSink() override;

  MediaSink(const MediaSink&) = delete;
  MediaSink& operator=(const MediaSink&) = delete;

  void on_message(const net::Message& msg) override;

  /// Raw frame hook (synchronization and application layers).
  void on_frame(std::function<void(const Frame&, sim::Duration latency)> fn) {
    on_frame_ = std::move(fn);
  }

  /// Media-time playout position in microseconds of stream time; -1
  /// before playout starts.  Advances in real (virtual) time once
  /// started; skew_adjust() shifts it (continuous sync lever).
  [[nodiscard]] std::int64_t playout_position() const;

  /// Continuous synchronization: slides the playout clock by @p delta
  /// (positive = jump forward).
  void skew_adjust(sim::Duration delta) { playout_origin_ -= delta; }

  [[nodiscard]] net::Address address() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t frames_received() const noexcept {
    return frames_;
  }
  [[nodiscard]] std::uint64_t frames_lost() const noexcept { return lost_; }

  /// Drains the samples accumulated since the last call (used by the
  /// QosMonitor each window).
  struct WindowSamples {
    util::Summary latency_us;
    util::Summary interarrival_us;
    std::uint64_t frames = 0;
    std::uint64_t late = 0;
    std::uint64_t lost = 0;
  };
  WindowSamples drain_window();

  void set_latency_bound(sim::Duration bound) { latency_bound_ = bound; }

 private:
  net::Network& net_;
  net::Address self_;
  sim::Duration prebuffer_;
  sim::Duration latency_bound_ = sim::msec(150);
  std::function<void(const Frame&, sim::Duration)> on_frame_;
  std::uint64_t frames_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t highest_seq_seen_ = 0;
  bool any_frame_ = false;
  sim::TimePoint last_arrival_ = 0;
  std::int64_t playout_origin_ = -1;  ///< virtual time of stream time 0
  WindowSamples window_;
};

/// The explicit binding object between one source and its sink(s).
class StreamBinding {
 public:
  /// Unicast binding.
  StreamBinding(net::Network& net, MediaSource& source, net::Address from,
                net::Address to);
  /// Multicast binding (group communication of continuous media).
  StreamBinding(net::Network& net, MediaSource& source, net::Address from,
                net::McastId group);

  StreamBinding(const StreamBinding&) = delete;
  StreamBinding& operator=(const StreamBinding&) = delete;

  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return sent_; }

  /// Serializes a frame (header only; payload bytes are simulated by
  /// wire_size).
  static std::string encode(const Frame& f);
  static std::optional<Frame> decode(std::string_view payload);

 private:
  void send(const Frame& f);

  net::Network& net_;
  net::Address from_;
  std::optional<net::Address> to_;
  std::optional<net::McastId> group_;
  std::uint64_t sent_ = 0;
};

/// Windowed QoS measurement at a sink.
class QosMonitor {
 public:
  using ReportFn = std::function<void(const QosReport&, QosVerdict)>;

  QosMonitor(sim::Simulator& sim, MediaSink& sink, QosSpec spec,
             sim::Duration window = sim::sec(1));
  ~QosMonitor();

  QosMonitor(const QosMonitor&) = delete;
  QosMonitor& operator=(const QosMonitor&) = delete;

  void on_report(ReportFn fn) { report_ = std::move(fn); }
  void set_spec(const QosSpec& spec) { spec_ = spec; }

  [[nodiscard]] const QosSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_;
  }

 private:
  void evaluate();

  sim::Simulator& sim_;
  MediaSink& sink_;
  QosSpec spec_;
  sim::Duration window_;
  ReportFn report_;
  std::uint64_t windows_ = 0;
  std::uint64_t violations_ = 0;
  sim::PeriodicTimer timer_;
};

/// Admission control and dynamic re-negotiation.
class QosManager {
 public:
  /// @p capacity_bps is the end-to-end budget this manager controls
  /// (modelling the reservable share of the path).
  explicit QosManager(double capacity_bps) : capacity_(capacity_bps) {}

  /// Admission: full acceptance, a counter-offer at reduced fps that
  /// fits the remaining budget (if >= min_fps), or rejection.
  struct Admission {
    bool admitted = false;
    QosSpec granted;  ///< possibly scaled down from the request
  };
  Admission admit(const QosSpec& requested);

  /// Releases an admitted stream's reservation.
  void release(const QosSpec& granted);

  /// Re-negotiation policy driven by monitor verdicts: degraded windows
  /// scale the source down (multiplicative decrease), healthy windows
  /// scale it back up (additive increase) toward the contract.
  /// Returns the new fps if a change should be applied.
  std::optional<double> react(const QosSpec& contract, double current_fps,
                              QosVerdict verdict);

  [[nodiscard]] double reserved_bps() const noexcept { return reserved_; }
  [[nodiscard]] double capacity_bps() const noexcept { return capacity_; }

 private:
  double capacity_;
  double reserved_ = 0;
};

/// Closed-loop QoS adaptation: wires a monitor, a manager and a source
/// into the full §4.2.2 control loop.
///
/// The subtlety it encapsulates: after scaling down, the *operating
/// point* (not the original contract) is what achieved throughput must be
/// judged against — otherwise a correctly scaled stream reads as
/// "degraded" forever and never probes back up.  The adaptor keeps the
/// monitor's spec at the operating point, scales the source down on
/// degraded windows (multiplicative decrease) and probes toward the
/// contract on healthy ones (additive increase) — AIMD over media rates.
class QosAdaptor {
 public:
  QosAdaptor(QosMonitor& monitor, QosManager& manager, MediaSource& source,
             QosSpec contract);

  /// Observer of every window, after adaptation was applied.
  void on_window(
      std::function<void(const QosReport&, QosVerdict, double fps)> fn) {
    on_window_ = std::move(fn);
  }

  [[nodiscard]] std::uint64_t rescales() const noexcept { return rescales_; }
  [[nodiscard]] double operating_fps() const noexcept {
    return operating_.fps;
  }

 private:
  QosMonitor& monitor_;
  QosManager& manager_;
  MediaSource& source_;
  QosSpec contract_;
  QosSpec operating_;
  std::uint64_t rescales_ = 0;
  std::function<void(const QosReport&, QosVerdict, double)> on_window_;
};

}  // namespace coop::streams
