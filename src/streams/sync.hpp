// Real-time synchronization for multimedia (§4.2.2-iii): "two styles of
// real-time synchronisation can be identified: firstly, event driven
// synchronisation where it is necessary to initiate an action (such as
// displaying a caption) at a particular point in time and, secondly,
// continuous synchronisation, where data presentation devices must be tied
// together so that they consume data in fixed ratios (e.g. in lip
// synchronisation)."
//
//   EventSync      — cue points on a sink's media timeline: fire callbacks
//                    when playout crosses a given stream time (captions,
//                    slide changes, camera cuts).
//   ContinuousSync — lip-sync regulator: periodically measures the skew
//                    between a master sink (audio) and a slave sink
//                    (video) and slides the slave's playout clock to keep
//                    |skew| under the bound.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulator.hpp"
#include "streams/stream.hpp"
#include "util/stats.hpp"

namespace coop::streams {

/// Cue-point scheduler over one sink's media time.
class EventSync {
 public:
  using CueFn = std::function<void(std::int64_t media_time)>;

  /// @p poll controls firing precision: cues fire on the first poll tick
  /// at or after their media time.
  EventSync(sim::Simulator& sim, MediaSink& sink,
            sim::Duration poll = sim::msec(10));
  ~EventSync();

  EventSync(const EventSync&) = delete;
  EventSync& operator=(const EventSync&) = delete;

  /// Registers a cue at @p media_time (µs of stream time).
  void at(std::int64_t media_time, CueFn fn);

  [[nodiscard]] std::size_t pending() const noexcept { return cues_.size(); }
  /// Firing error distribution (scheduled vs actual media time, µs).
  [[nodiscard]] const util::Summary& firing_error() const noexcept {
    return errors_;
  }

 private:
  void poll();

  sim::Simulator& sim_;
  MediaSink& sink_;
  std::multimap<std::int64_t, CueFn> cues_;
  util::Summary errors_;
  sim::PeriodicTimer timer_;
};

/// ContinuousSync tuning.
struct ContinuousSyncConfig {
  sim::Duration check_period = sim::msec(100);
  /// Skew beyond this triggers correction (humans notice ~80ms A/V
  /// offset; the classic lip-sync bound).
  sim::Duration skew_bound = sim::msec(80);
  /// Fraction of the measured skew corrected per check (damping).
  double correction_gain = 0.5;
};

/// Master/slave playout-clock regulator (lip sync).
class ContinuousSync {
 public:
  using Config = ContinuousSyncConfig;

  ContinuousSync(sim::Simulator& sim, MediaSink& master, MediaSink& slave,
                 Config config = {});
  ~ContinuousSync();

  ContinuousSync(const ContinuousSync&) = delete;
  ContinuousSync& operator=(const ContinuousSync&) = delete;

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }

  /// Skew samples (master - slave playout position, µs) measured at each
  /// check — the lip-sync quality metric of experiment E7.
  [[nodiscard]] const util::Summary& skew() const noexcept { return skew_; }
  [[nodiscard]] std::uint64_t corrections() const noexcept {
    return corrections_;
  }

 private:
  void check();

  sim::Simulator& sim_;
  MediaSink& master_;
  MediaSink& slave_;
  Config config_;
  util::Summary skew_;
  std::uint64_t corrections_ = 0;
  sim::PeriodicTimer timer_;
};

}  // namespace coop::streams
