// Uniform-grid spatial index over participants of the awareness space.
//
// The spatial model (Benford & Fahlén) was designed for "cooperation in
// large unbounded space"; at the ROADMAP's target scale a brute-force
// all-pairs walk per published event is O(N²) per broadcast-heavy
// session.  This index hashes participants into square cells whose side
// is at least the largest aura radius in the space, so the exact superset
// of participants within any query radius <= cell size lives in at most
// the 3x3 block of cells around the query point.
//
// Determinism contract: query() appends matches in unspecified order
// (cells are hashed, in-cell order depends on move history); callers that
// need run-to-run stable iteration sort the result.  The index itself is
// exact — a participant is returned iff its distance from the centre is
// <= radius — so an engine that sorts the candidate ids visits the same
// observers in the same order a brute-force scan would, minus the
// guaranteed-zero-weight ones.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ccontrol/locks.hpp"  // ClientId

namespace coop::awareness {

using ClientId = ccontrol::ClientId;

/// Position in the abstract cooperation space.
struct Point {
  double x = 0;
  double y = 0;
};

/// Straight-line distance.
[[nodiscard]] inline double distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Fixed-cell spatial hash.  Cell size only affects cost, never results;
/// set_cell_size() rebuilds in O(N) when the owning model learns of a
/// larger aura radius.
class UniformGridIndex {
 public:
  static constexpr double kMinCellSize = 1.0;

  explicit UniformGridIndex(double cell_size = 16.0)
      : cell_(cell_size > kMinCellSize ? cell_size : kMinCellSize) {}

  [[nodiscard]] double cell_size() const noexcept { return cell_; }
  [[nodiscard]] std::size_t size() const noexcept { return where_.size(); }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Inserts @p id at @p p, or moves it if already present.  Moves within
  /// one cell are O(1); cell crossings are O(occupancy of the old cell).
  void upsert(ClientId id, Point p) {
    const std::int64_t key = key_of(p);
    auto it = where_.find(id);
    if (it == where_.end()) {
      where_.emplace(id, Slot{key, p});
      cells_[key].push_back({id, p});
      return;
    }
    if (it->second.key == key) {
      it->second.at = p;
      for (Entry& e : cells_[key])
        if (e.id == id) {
          e.at = p;
          return;
        }
      return;  // unreachable if invariants hold
    }
    detach(id, it->second.key);
    it->second = Slot{key, p};
    cells_[key].push_back({id, p});
  }

  void erase(ClientId id) {
    auto it = where_.find(id);
    if (it == where_.end()) return;
    detach(id, it->second.key);
    where_.erase(it);
  }

  /// Grows (or shrinks) the cell side and rebuilds.  The caller decides
  /// policy; correctness never depends on the value.
  void set_cell_size(double s) {
    s = s > kMinCellSize ? s : kMinCellSize;
    if (s == cell_) return;
    cell_ = s;
    cells_.clear();
    for (auto& [id, slot] : where_) {
      slot.key = key_of(slot.at);
      cells_[slot.key].push_back({id, slot.at});
    }
  }

  /// Appends every participant (except @p exclude) whose distance from
  /// @p centre is <= @p radius.  Exact: callers need no re-check.
  void query(Point centre, double radius, ClientId exclude,
             std::vector<ClientId>& out) const {
    if (radius < 0) return;
    const auto cx_lo = cell_coord(centre.x - radius);
    const auto cx_hi = cell_coord(centre.x + radius);
    const auto cy_lo = cell_coord(centre.y - radius);
    const auto cy_hi = cell_coord(centre.y + radius);
    for (std::int32_t cx = cx_lo; cx <= cx_hi; ++cx) {
      for (std::int32_t cy = cy_lo; cy <= cy_hi; ++cy) {
        auto it = cells_.find(pack(cx, cy));
        if (it == cells_.end()) continue;
        for (const Entry& e : it->second) {
          if (e.id == exclude) continue;
          if (distance(e.at, centre) <= radius) out.push_back(e.id);
        }
      }
    }
  }

 private:
  struct Entry {
    ClientId id;
    Point at;
  };
  struct Slot {
    std::int64_t key;
    Point at;
  };

  [[nodiscard]] std::int32_t cell_coord(double v) const {
    return static_cast<std::int32_t>(std::floor(v / cell_));
  }

  static std::int64_t pack(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::int64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::int64_t>(static_cast<std::uint32_t>(cy));
  }

  [[nodiscard]] std::int64_t key_of(Point p) const {
    return pack(cell_coord(p.x), cell_coord(p.y));
  }

  void detach(ClientId id, std::int64_t key) {
    auto cit = cells_.find(key);
    if (cit == cells_.end()) return;
    auto& bucket = cit->second;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].id == id) {
        bucket[i] = bucket.back();
        bucket.pop_back();
        break;
      }
    }
    if (bucket.empty()) cells_.erase(cit);
  }

  double cell_;
  std::unordered_map<std::int64_t, std::vector<Entry>> cells_;
  std::unordered_map<ClientId, Slot> where_;
};

}  // namespace coop::awareness
