#include "awareness/engine.hpp"

#include <algorithm>
#include <utility>

namespace coop::awareness {

AwarenessEngine::AwarenessEngine(sim::Simulator& sim, SpatialModel& space,
                                 EngineConfig config)
    : sim_(sim),
      space_(space),
      config_(config),
      digest_timer_(sim, config.digest_period, [this] { flush_digests(); }) {
  digest_timer_.start();
}

AwarenessEngine::~AwarenessEngine() { digest_timer_.stop(); }

void AwarenessEngine::subscribe(ClientId observer, DeliverFn fn) {
  observers_[observer].deliver = std::move(fn);
}

void AwarenessEngine::unsubscribe(ClientId observer) {
  observers_.erase(observer);
}

double AwarenessEngine::interest(ClientId observer,
                                 const std::string& object) const {
  auto it = last_touch_.find({observer, object});
  if (it == last_touch_.end()) return 0.0;
  const auto age = static_cast<double>(sim_.now() - it->second);
  const auto tau = static_cast<double>(config_.interest_decay);
  if (tau <= 0) return 0.0;
  return std::exp(-age / tau);
}

double AwarenessEngine::weight(ClientId observer, ClientId actor,
                               const std::string& object) const {
  const double spatial = space_.awareness(observer, actor);
  const double temporal = interest(observer, object);
  // Temporal interest raises the floor: someone editing "my" section is
  // relevant however far away they sit in the space.
  return std::clamp(spatial + temporal * (1.0 - spatial), 0.0, 1.0);
}

void AwarenessEngine::mark_interest(ClientId observer,
                                    const std::string& object) {
  last_touch_[{observer, object}] = sim_.now();
}

void AwarenessEngine::publish(const ActivityEvent& event) {
  ++stats_.published;
  // The action itself refreshes the actor's interest in the object.
  last_touch_[{event.actor, event.object}] = sim_.now();

  for (auto& [observer, state] : observers_) {
    if (observer == event.actor) continue;
    const double w = weight(observer, event.actor, event.object);
    if (w <= 0.0) {
      ++stats_.suppressed;
      continue;
    }
    if (w >= config_.full_threshold) {
      ++stats_.immediate;
      stats_.notification_time.add(
          static_cast<double>(sim_.now() - event.at));
      if (state.deliver) state.deliver(event, w, /*via_digest=*/false);
    } else {
      auto [it, inserted] = state.pending.try_emplace(event.object,
                                                      event, w);
      if (!inserted) {
        ++stats_.coalesced;
        it->second = {event, std::max(w, it->second.second)};
      }
    }
  }
}

void AwarenessEngine::flush_digests() {
  for (auto& [observer, state] : observers_) {
    if (state.pending.empty()) continue;
    auto pending = std::move(state.pending);
    state.pending.clear();
    for (auto& [object, entry] : pending) {
      ++stats_.digested;
      stats_.notification_time.add(
          static_cast<double>(sim_.now() - entry.first.at));
      if (state.deliver)
        state.deliver(entry.first, entry.second, /*via_digest=*/true);
    }
  }
}

}  // namespace coop::awareness
