#include "awareness/engine.hpp"

#include <algorithm>
#include <utility>

namespace coop::awareness {

namespace {

// Distinguishes multiple engines sharing one registry (e.g. one per
// site).  Construction order is deterministic under the simulator, so
// ids are stable across runs.
std::uint64_t next_engine_id() {
  static std::uint64_t id = 0;
  return id++;
}

}  // namespace

AwarenessEngine::AwarenessEngine(sim::Simulator& sim, SpatialModel& space,
                                 EngineConfig config, obs::Obs* obs)
    : sim_(sim),
      space_(space),
      config_(config),
      digest_timer_(sim, config.digest_period, [this] { flush_digests(); }) {
  if (obs == nullptr) obs = obs::default_obs();
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Obs>();
    obs = owned_obs_.get();
  }
  obs_ = obs;
  metric_prefix_ = "awareness." + std::to_string(next_engine_id()) + ".";
  auto& m = obs_->metrics;
  m.expose(metric_prefix_ + "published",
           [this] { return static_cast<double>(stats_.published); });
  m.expose(metric_prefix_ + "immediate",
           [this] { return static_cast<double>(stats_.immediate); });
  m.expose(metric_prefix_ + "digested",
           [this] { return static_cast<double>(stats_.digested); });
  m.expose(metric_prefix_ + "coalesced",
           [this] { return static_cast<double>(stats_.coalesced); });
  m.expose(metric_prefix_ + "suppressed",
           [this] { return static_cast<double>(stats_.suppressed); });
  m.expose(metric_prefix_ + "digests_dropped",
           [this] { return static_cast<double>(stats_.digests_dropped); });
  m.expose(metric_prefix_ + "interest_evicted",
           [this] { return static_cast<double>(stats_.interest_evicted); });
  m.expose(metric_prefix_ + "interest_table_size",
           [this] { return static_cast<double>(last_touch_.size()); });
  m.expose(metric_prefix_ + "candidate_set_size",
           [this] { return static_cast<double>(last_candidate_set_); });
  m.expose(metric_prefix_ + "observers",
           [this] { return static_cast<double>(observers_.size()); });
  // Publish cost = observers examined per publish; the e12 sweep reads
  // its quantiles to show sub-linear growth.  Owned so the distribution
  // survives engine teardown in bench artifacts.
  publish_cost_ = &m.histogram(metric_prefix_ + "publish_cost", 0.0, 4096.0,
                               64);
  prof_publish_ = obs_->profiler.site("awareness.publish",
                                      obs::Category::kAwareness);
  prof_flush_ = obs_->profiler.site("awareness.flush",
                                    obs::Category::kAwareness);
  digest_timer_.start();
}

AwarenessEngine::~AwarenessEngine() {
  digest_timer_.stop();
  obs_->metrics.retire_polled(metric_prefix_);
}

void AwarenessEngine::subscribe(ClientId observer, DeliverFn fn) {
  if (dispatch_depth_ > 0) {
    // Applied after the running dispatch; an observer unsubscribed earlier
    // in this same dispatch stays squelched until then.
    deferred_.emplace_back(observer, std::optional<DeliverFn>(std::move(fn)));
    return;
  }
  observers_[observer].deliver = std::move(fn);
}

void AwarenessEngine::unsubscribe(ClientId observer) {
  if (dispatch_depth_ > 0) {
    deferred_.emplace_back(observer, std::nullopt);
    dead_.insert(observer);
    return;
  }
  auto it = observers_.find(observer);
  if (it == observers_.end()) return;
  stats_.digests_dropped += it->second.pending.size();
  observers_.erase(it);
}

void AwarenessEngine::apply_deferred() {
  for (auto& [observer, fn] : deferred_) {
    if (fn.has_value()) {
      observers_[observer].deliver = std::move(*fn);
    } else {
      auto it = observers_.find(observer);
      if (it == observers_.end()) continue;
      stats_.digests_dropped += it->second.pending.size();
      observers_.erase(it);
    }
  }
  deferred_.clear();
  dead_.clear();
}

double AwarenessEngine::interest(ClientId observer,
                                 const std::string& object) const {
  auto it = last_touch_.find({observer, object});
  if (it == last_touch_.end()) return 0.0;
  const auto age = static_cast<double>(sim_.now() - it->second);
  const auto tau = static_cast<double>(config_.interest_decay);
  if (tau <= 0) return 0.0;
  return std::exp(-age / tau);
}

double AwarenessEngine::weight(ClientId observer, ClientId actor,
                               const std::string& object) const {
  const double spatial = space_.awareness(observer, actor);
  const double temporal = interest(observer, object);
  // Temporal interest raises the floor: someone editing "my" section is
  // relevant however far away they sit in the space.
  return std::clamp(spatial + temporal * (1.0 - spatial), 0.0, 1.0);
}

void AwarenessEngine::touch(ClientId who, const std::string& object) {
  last_touch_[{who, object}] = sim_.now();
  interest_index_[object].insert(who);
}

void AwarenessEngine::mark_interest(ClientId observer,
                                    const std::string& object) {
  touch(observer, object);
}

bool AwarenessEngine::handle(Observer& state, const ActivityEvent& event,
                             double w) {
  if (w <= 0.0) return false;
  if (w >= config_.full_threshold) {
    ++stats_.immediate;
    stats_.notification_time.add(static_cast<double>(sim_.now() - event.at));
    if (state.deliver) state.deliver(event, w, /*via_digest=*/false);
  } else {
    auto [it, inserted] = state.pending.try_emplace(event.object, event, w);
    if (!inserted) {
      ++stats_.coalesced;
      // Latest event wins *with its own weight*: delivering a newer event
      // stamped with an older event's higher weight misled observers
      // about what just happened (the old coalescing kept max(weight)).
      it->second = {event, w};
    }
  }
  return true;
}

void AwarenessEngine::publish(const ActivityEvent& event) {
  obs::ProfScope prof(obs_->profiler, prof_publish_);
  ++stats_.published;
  // The action itself refreshes the actor's interest in the object.
  touch(event.actor, event.object);

  const std::uint64_t immediate_before = stats_.immediate;
  std::size_t handled = 0;
  std::size_t visited = 0;
  ++dispatch_depth_;
  if (config_.use_index) {
    // Candidate set: grid neighbours inside the actor's nimbus ∪ ids with
    // live interest in the object.  Everyone else provably weighs 0.
    // Scratch vectors are moved out so a reentrant publish from a
    // delivery callback grabs fresh (empty) ones instead of clobbering
    // this walk.
    std::vector<ClientId> candidates = std::move(candidate_scratch_);
    candidates.clear();
    space_.spatial_candidates(event.actor, candidates);
    if (auto iit = interest_index_.find(event.object);
        iit != interest_index_.end()) {
      std::vector<ClientId> merged = std::move(merge_scratch_);
      merged.clear();
      std::set_union(candidates.begin(), candidates.end(),
                     iit->second.begin(), iit->second.end(),
                     std::back_inserter(merged));
      candidates.swap(merged);
      merge_scratch_ = std::move(merged);
    }
    // Observers already dead when this walk starts (unsubscribed by an
    // enclosing dispatch) were never eligible; observers that die *during*
    // the walk need the visited record below to be settled correctly.
    const std::set<ClientId> dead_at_entry = dead_;
    std::vector<ClientId> visited_ids = std::move(visited_scratch_);
    visited_ids.clear();  // stays ascending: candidates are sorted
    for (ClientId observer : candidates) {
      if (observer == event.actor || dead_.count(observer) != 0) continue;
      auto it = observers_.find(observer);
      if (it == observers_.end()) continue;
      ++visited;
      visited_ids.push_back(observer);
      if (handle(it->second,
                 event, weight(observer, event.actor, event.object)))
        ++handled;
    }
    // Non-candidates weigh 0 by construction; count them suppressed
    // without visiting so stats match the brute-force walk exactly.
    // Observers unsubscribed mid-walk split two ways, mirroring the
    // brute-force scan over the same ascending-id order: one already
    // visited keeps whatever stat its visit earned (subtracting it again
    // made `eligible - handled` wrap below zero), one not yet visited is
    // skipped with no stat at all.
    std::size_t eligible = observers_.size();
    if (observers_.count(event.actor) != 0) --eligible;
    for (ClientId d : dead_at_entry)
      if (d != event.actor && observers_.count(d) != 0) --eligible;
    std::size_t dead_unvisited = 0;
    for (ClientId d : dead_) {
      if (d == event.actor || dead_at_entry.count(d) != 0) continue;
      if (observers_.count(d) == 0) continue;
      if (!std::binary_search(visited_ids.begin(), visited_ids.end(), d))
        ++dead_unvisited;
    }
    stats_.suppressed += eligible - handled - dead_unvisited;
    visited_scratch_ = std::move(visited_ids);
    candidate_scratch_ = std::move(candidates);
  } else {
    for (auto& [observer, state] : observers_) {
      if (observer == event.actor || dead_.count(observer) != 0) continue;
      ++visited;
      if (!handle(state, event, weight(observer, event.actor, event.object)))
        ++stats_.suppressed;
      else
        ++handled;
    }
  }
  --dispatch_depth_;
  if (dispatch_depth_ == 0) apply_deferred();

  last_candidate_set_ = visited;
  publish_cost_->add(static_cast<double>(visited));
  obs_->tracer.event(
      sim_.now(), obs::Category::kAwareness, "awareness_publish",
      {{"actor", static_cast<double>(event.actor)},
       {"candidates", static_cast<double>(visited)},
       {"handled", static_cast<double>(handled)},
       {"immediate", static_cast<double>(stats_.immediate -
                                         immediate_before)}});
}

void AwarenessEngine::flush_digests() {
  obs::ProfScope prof(obs_->profiler, prof_flush_);
  const std::uint64_t digested_before = stats_.digested;
  const std::uint64_t evicted_before = stats_.interest_evicted;
  std::uint64_t dropped = 0;
  ++dispatch_depth_;
  for (auto& [observer, state] : observers_) {
    if (state.pending.empty() || dead_.count(observer) != 0) continue;
    auto pending = std::move(state.pending);
    state.pending = {};
    std::size_t delivered = 0;
    for (auto& [object, entry] : pending) {
      if (dead_.count(observer) != 0) {
        // A callback earlier in this flush unsubscribed the observer:
        // the rest of their digest dies with the subscription.
        dropped += pending.size() - delivered;
        break;
      }
      ++stats_.digested;
      stats_.notification_time.add(
          static_cast<double>(sim_.now() - entry.first.at));
      if (state.deliver)
        state.deliver(entry.first, entry.second, /*via_digest=*/true);
      ++delivered;
    }
  }
  --dispatch_depth_;
  stats_.digests_dropped += dropped;
  if (dispatch_depth_ == 0) apply_deferred();
  gc_interest();

  if (stats_.digested != digested_before || dropped != 0 ||
      stats_.interest_evicted != evicted_before) {
    obs_->tracer.event(
        sim_.now(), obs::Category::kAwareness, "awareness_flush",
        {{"delivered", static_cast<double>(stats_.digested - digested_before)},
         {"dropped", static_cast<double>(dropped)},
         {"evicted",
          static_cast<double>(stats_.interest_evicted - evicted_before)},
         {"interest_table",
          static_cast<double>(last_touch_.size())}});
  }
}

void AwarenessEngine::gc_interest() {
  const auto tau = static_cast<double>(config_.interest_decay);
  if (tau <= 0 || config_.interest_gc_factor <= 0) return;
  const auto horizon =
      static_cast<sim::Duration>(tau * config_.interest_gc_factor);
  const sim::TimePoint now = sim_.now();
  for (auto it = last_touch_.begin(); it != last_touch_.end();) {
    if (now - it->second > horizon) {
      auto iit = interest_index_.find(it->first.second);
      if (iit != interest_index_.end()) {
        iit->second.erase(it->first.first);
        if (iit->second.empty()) interest_index_.erase(iit);
      }
      it = last_touch_.erase(it);
      ++stats_.interest_evicted;
    } else {
      ++it;
    }
  }
}

}  // namespace coop::awareness
