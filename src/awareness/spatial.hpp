// The spatial model of interaction (Benford & Fahlén, DIVE) — §3.3.2's
// "spatial model for cooperation in large unbounded space" and the basis
// of §4.2.1's awareness weightings.
//
// Each participant occupies a position in an abstract space and projects
// two auras: a *focus* (where their attention is directed) and a *nimbus*
// (where their activity is observable).  The awareness of observer A about
// observed B combines A's focus at B's position with B's nimbus at A's
// position — so both parties shape how aware one is of the other.  The
// space is an abstraction: coordinates can be a virtual room, a document's
// section layout, or a media-space floor plan.
//
// Participants are mirrored into a UniformGridIndex (spatial_index.hpp),
// updated incrementally on place/set_focus/set_nimbus/remove, so engines
// can ask for the *candidate set* of an actor — everyone inside the
// actor's nimbus, the exact superset of observers with non-zero spatial
// awareness of the actor — without walking the whole space.  The grid's
// cell size tracks the largest aura radius seen (growth rebuilds in
// O(N); shrinking radii keep the larger cells, which stays correct and
// avoids rebuild thrash).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "awareness/spatial_index.hpp"

namespace coop::awareness {

/// Quantized awareness bands used by delivery policies.
enum class AwarenessLevel : std::uint8_t {
  kNone,        ///< no mutual aura overlap: silence
  kPeripheral,  ///< weak overlap: digested/throttled updates
  kFull,        ///< strong overlap: immediate updates
};

/// The space and everyone's auras.
class SpatialModel {
 public:
  struct Participant {
    Point position;
    double focus_radius = 10.0;
    double nimbus_radius = 10.0;
  };

  /// Adds or moves a participant.
  void place(ClientId who, Point where) {
    participants_[who].position = where;
    grid_.upsert(who, where);
  }

  /// Sets how far @p who's attention reaches.
  void set_focus(ClientId who, double radius) {
    Participant& p = participants_[who];
    p.focus_radius = std::max(0.0, radius);
    grid_.upsert(who, p.position);  // may be a fresh default-placed entry
    grow_cells(p.focus_radius);
  }

  /// Sets how far @p who's activity projects.
  void set_nimbus(ClientId who, double radius) {
    Participant& p = participants_[who];
    p.nimbus_radius = std::max(0.0, radius);
    grid_.upsert(who, p.position);
    grow_cells(p.nimbus_radius);
  }

  void remove(ClientId who) {
    participants_.erase(who);
    grid_.erase(who);
  }

  [[nodiscard]] std::optional<Point> position(ClientId who) const {
    auto it = participants_.find(who);
    if (it == participants_.end()) return std::nullopt;
    return it->second.position;
  }

  /// Awareness of @p observer about @p observed in [0,1]: the product of
  /// the observer's focus evaluated at the observed's position and the
  /// observed's nimbus evaluated at the observer's position, each with
  /// linear falloff.  Unknown participants yield 0.
  [[nodiscard]] double awareness(ClientId observer, ClientId observed) const {
    if (observer == observed) return 1.0;
    auto a = participants_.find(observer);
    auto b = participants_.find(observed);
    if (a == participants_.end() || b == participants_.end()) return 0.0;
    const double d = distance(a->second.position, b->second.position);
    const double focus = falloff(d, a->second.focus_radius);
    const double nimbus = falloff(d, b->second.nimbus_radius);
    return focus * nimbus;
  }

  /// Quantizes awareness into delivery bands.
  [[nodiscard]] AwarenessLevel level(ClientId observer,
                                     ClientId observed,
                                     double full_threshold = 0.4) const {
    const double a = awareness(observer, observed);
    if (a >= full_threshold) return AwarenessLevel::kFull;
    if (a > 0.0) return AwarenessLevel::kPeripheral;
    return AwarenessLevel::kNone;
  }

  /// Appends, in ascending id order, every participant who could have
  /// non-zero spatial awareness of @p actor: awareness(x, actor) > 0
  /// requires distance(x, actor) < actor's nimbus radius, so the grid
  /// query over that radius is an exact superset.  Unknown actors yield
  /// nothing (their nimbus reaches nobody).
  void spatial_candidates(ClientId actor, std::vector<ClientId>& out) const {
    auto it = participants_.find(actor);
    if (it == participants_.end()) return;
    const std::size_t base = out.size();
    grid_.query(it->second.position, it->second.nimbus_radius, actor, out);
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end());
  }

  [[nodiscard]] std::size_t participant_count() const noexcept {
    return participants_.size();
  }

  /// All participants (iteration for engines built on the model).
  [[nodiscard]] const std::map<ClientId, Participant>& participants() const {
    return participants_;
  }

  /// The backing index (tests and gauges).
  [[nodiscard]] const UniformGridIndex& grid() const noexcept { return grid_; }

 private:
  static double falloff(double dist, double radius) {
    if (radius <= 0.0) return 0.0;
    return std::max(0.0, 1.0 - dist / radius);
  }

  /// Cell size must stay >= the largest aura radius so any nimbus query
  /// touches at most a 3x3 cell block.  Doubling amortizes rebuilds when
  /// a session keeps nudging radii upward.
  void grow_cells(double radius) {
    if (radius <= grid_.cell_size()) return;
    double next = grid_.cell_size();
    while (next < radius) next *= 2;
    grid_.set_cell_size(next);
  }

  std::map<ClientId, Participant> participants_;
  UniformGridIndex grid_;
};

}  // namespace coop::awareness
