// The awareness engine: activity events weighted by spatial and temporal
// metrics, delivered immediately, digested, or suppressed.
//
// §4.2.1: "provide explicit awareness mechanisms for both synchronous and
// asynchronous modes of working.  This work often uses spatial and temporal
// metrics to generate awareness weightings defining the impact of actions
// on other users."
//
// Weighting = spatial awareness (focus/nimbus overlap) raised by a
// temporal *interest* term: an observer who recently worked on the same
// object stays highly aware of changes to it even from across the space
// (their attention lingers).  Interest decays exponentially.
//
// Delivery policy per (event, observer):
//   weight >= full_threshold  -> immediate callback (notification time ~0)
//   0 < weight < threshold    -> batched into a periodic digest; only the
//                                latest event per object survives batching
//   weight == 0               -> suppressed entirely
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "awareness/spatial.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::awareness {

/// One observable action in the workspace.
struct ActivityEvent {
  ClientId actor = 0;
  std::string object;  ///< what was touched (document, section, strip...)
  std::string verb;    ///< what happened ("edit", "annotate", "move"...)
  sim::TimePoint at = 0;
};

struct EngineConfig {
  /// Weight at or above which delivery is immediate.
  double full_threshold = 0.4;
  /// Digest flush cadence for peripheral observers.
  sim::Duration digest_period = sim::sec(5);
  /// e-folding time of the temporal interest term.
  sim::Duration interest_decay = sim::sec(60);
};

struct EngineStats {
  std::uint64_t published = 0;
  std::uint64_t immediate = 0;
  std::uint64_t digested = 0;        ///< events delivered via digests
  std::uint64_t coalesced = 0;       ///< events replaced inside a digest
  std::uint64_t suppressed = 0;      ///< weight-zero drops
  util::Summary notification_time;   ///< publish -> delivery, virtual µs
};

/// Session-local awareness distributor.  Distribution across sites is the
/// transport's job (the groupware session publishes into one engine per
/// site and replicates events over a GroupChannel).
class AwarenessEngine {
 public:
  /// Delivery callback: the event plus the weight it carried for this
  /// observer.  `via_digest` distinguishes the two delivery paths.
  using DeliverFn =
      std::function<void(const ActivityEvent&, double weight, bool via_digest)>;

  AwarenessEngine(sim::Simulator& sim, SpatialModel& space,
                  EngineConfig config = {});
  ~AwarenessEngine();

  AwarenessEngine(const AwarenessEngine&) = delete;
  AwarenessEngine& operator=(const AwarenessEngine&) = delete;

  /// Registers @p observer's callback.
  void subscribe(ClientId observer, DeliverFn fn);
  void unsubscribe(ClientId observer);

  /// Publishes an action; the engine fans it out by weight.  The actor
  /// also gains interest in the object (temporal metric).
  void publish(const ActivityEvent& event);

  /// Current weight of @p event's relevance for @p observer (spatial ×
  /// temporal combination) — exposed for visualisation layers.
  [[nodiscard]] double weight(ClientId observer, ClientId actor,
                              const std::string& object) const;

  /// Explicitly registers interest (e.g. opening a document) so changes
  /// to @p object reach @p observer even without spatial overlap.
  void mark_interest(ClientId observer, const std::string& object);

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  struct Observer {
    DeliverFn deliver;
    /// Pending digest: object -> latest event (+ its weight).
    std::map<std::string, std::pair<ActivityEvent, double>> pending;
  };

  [[nodiscard]] double interest(ClientId observer,
                                const std::string& object) const;
  void flush_digests();

  sim::Simulator& sim_;
  SpatialModel& space_;
  EngineConfig config_;
  std::map<ClientId, Observer> observers_;
  /// (observer, object) -> last time the observer acted on the object.
  std::map<std::pair<ClientId, std::string>, sim::TimePoint> last_touch_;
  sim::PeriodicTimer digest_timer_;
  EngineStats stats_;
};

}  // namespace coop::awareness
