// The awareness engine: activity events weighted by spatial and temporal
// metrics, delivered immediately, digested, or suppressed.
//
// §4.2.1: "provide explicit awareness mechanisms for both synchronous and
// asynchronous modes of working.  This work often uses spatial and temporal
// metrics to generate awareness weightings defining the impact of actions
// on other users."
//
// Weighting = spatial awareness (focus/nimbus overlap) raised by a
// temporal *interest* term: an observer who recently worked on the same
// object stays highly aware of changes to it even from across the space
// (their attention lingers).  Interest decays exponentially.
//
// Delivery policy per (event, observer):
//   weight >= full_threshold  -> immediate callback (notification time ~0)
//   0 < weight < threshold    -> batched into a periodic digest; only the
//                                latest event per object survives batching
//   weight == 0               -> suppressed entirely
//
// Scale: publish() does not walk every observer.  An event can only carry
// non-zero weight for (a) observers inside the actor's nimbus — served by
// the SpatialModel's uniform grid — and (b) observers with a live
// temporal-interest entry for the object — served by an inverted index
// (object -> interested ids) maintained alongside last_touch_.  The two
// sets are merged, sorted, and visited in ascending id order, which is
// exactly the order a brute-force scan of the (sorted) observer map
// visits the non-zero-weight subset, so deliveries and stats are
// byte-identical to the O(N) walk (config.use_index = false keeps the
// brute-force path alive as the differential baseline).
//
// Reentrancy contract: subscribe()/unsubscribe() may be called from
// inside a DeliverFn.  The mutation is deferred until the dispatch that
// is currently running completes; until then an unsubscribed observer
// receives no further deliveries (its remaining digest entries are
// dropped and counted in stats().digests_dropped) and a freshly
// subscribed observer starts receiving only after the dispatch.
// publish() and mark_interest() from inside a DeliverFn are safe.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "awareness/spatial.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::awareness {

/// One observable action in the workspace.
struct ActivityEvent {
  ClientId actor = 0;
  std::string object;  ///< what was touched (document, section, strip...)
  std::string verb;    ///< what happened ("edit", "annotate", "move"...)
  sim::TimePoint at = 0;
};

struct EngineConfig {
  /// Weight at or above which delivery is immediate.
  double full_threshold = 0.4;
  /// Digest flush cadence for peripheral observers.
  sim::Duration digest_period = sim::sec(5);
  /// e-folding time of the temporal interest term.
  sim::Duration interest_decay = sim::sec(60);
  /// Interest entries older than this many decay constants are evicted on
  /// the digest timer (their weight contribution, e^-10 ~ 5e-5, is far
  /// below anything a delivery policy acts on).  <= 0 disables eviction.
  double interest_gc_factor = 10.0;
  /// false = brute-force all-observer walk per publish; the differential
  /// baseline bench_e12 compares the indexed path against.
  bool use_index = true;
};

struct EngineStats {
  std::uint64_t published = 0;
  std::uint64_t immediate = 0;
  std::uint64_t digested = 0;        ///< events delivered via digests
  std::uint64_t coalesced = 0;       ///< events replaced inside a digest
  std::uint64_t suppressed = 0;      ///< weight-zero drops
  std::uint64_t digests_dropped = 0; ///< pending entries lost to unsubscribe
  std::uint64_t interest_evicted = 0;  ///< last-touch entries GC'd
  util::Summary notification_time;   ///< publish -> delivery, virtual µs
};

/// Session-local awareness distributor.  Distribution across sites is the
/// transport's job (the groupware session publishes into one engine per
/// site and replicates events over a GroupChannel).
class AwarenessEngine {
 public:
  /// Delivery callback: the event plus the weight it carried for this
  /// observer.  `via_digest` distinguishes the two delivery paths.
  using DeliverFn =
      std::function<void(const ActivityEvent&, double weight, bool via_digest)>;

  /// Records into @p obs if given, else the ambient default, else a
  /// private Obs (standalone engines in unit tests need no setup).
  AwarenessEngine(sim::Simulator& sim, SpatialModel& space,
                  EngineConfig config = {}, obs::Obs* obs = nullptr);
  ~AwarenessEngine();

  AwarenessEngine(const AwarenessEngine&) = delete;
  AwarenessEngine& operator=(const AwarenessEngine&) = delete;

  /// Registers @p observer's callback (deferred while a dispatch runs).
  void subscribe(ClientId observer, DeliverFn fn);
  void unsubscribe(ClientId observer);

  /// Publishes an action; the engine fans it out by weight.  The actor
  /// also gains interest in the object (temporal metric).
  void publish(const ActivityEvent& event);

  /// Current weight of @p event's relevance for @p observer (spatial ×
  /// temporal combination) — exposed for visualisation layers.
  [[nodiscard]] double weight(ClientId observer, ClientId actor,
                              const std::string& object) const;

  /// Explicitly registers interest (e.g. opening a document) so changes
  /// to @p object reach @p observer even without spatial overlap.
  void mark_interest(ClientId observer, const std::string& object);

  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// Live (ungarbage-collected) interest entries across all objects.
  [[nodiscard]] std::size_t interest_table_size() const noexcept {
    return last_touch_.size();
  }

  /// Observers visited by the most recent publish().
  [[nodiscard]] std::size_t last_candidate_set() const noexcept {
    return last_candidate_set_;
  }

  /// Metric key prefix ("awareness.<id>.") of this engine's instruments.
  [[nodiscard]] const std::string& metric_prefix() const noexcept {
    return metric_prefix_;
  }

 private:
  struct Observer {
    DeliverFn deliver;
    /// Pending digest: object -> latest event (+ its weight).
    std::map<std::string, std::pair<ActivityEvent, double>> pending;
  };

  [[nodiscard]] double interest(ClientId observer,
                                const std::string& object) const;
  /// Refreshes (observer, object) interest and the inverted index.
  void touch(ClientId who, const std::string& object);
  /// Delivers or digests @p event for one observer; false if weight == 0.
  bool handle(Observer& state, const ActivityEvent& event, double w);
  void flush_digests();
  void gc_interest();
  void apply_deferred();

  sim::Simulator& sim_;
  SpatialModel& space_;
  EngineConfig config_;
  std::map<ClientId, Observer> observers_;
  /// (observer, object) -> last time the observer acted on the object.
  std::map<std::pair<ClientId, std::string>, sim::TimePoint> last_touch_;
  /// Inverted interest index: object -> ids with a last_touch_ entry.
  std::map<std::string, std::set<ClientId>> interest_index_;
  sim::PeriodicTimer digest_timer_;
  EngineStats stats_;
  std::size_t last_candidate_set_ = 0;

  // --- dispatch reentrancy state ------------------------------------------
  int dispatch_depth_ = 0;
  /// Subscription mutations queued during dispatch.  An engaged optional
  /// (re)registers the callback — even an empty one, matching the
  /// non-deferred subscribe(); nullopt removes the observer.
  std::vector<std::pair<ClientId, std::optional<DeliverFn>>> deferred_;
  /// Unsubscribed during the current dispatch: squelched immediately.
  std::set<ClientId> dead_;
  /// Scratch storage recycled across publishes (moved out during use so
  /// reentrant publishes never clobber an in-flight candidate walk).
  std::vector<ClientId> candidate_scratch_;
  std::vector<ClientId> merge_scratch_;
  std::vector<ClientId> visited_scratch_;

  // --- observability ------------------------------------------------------
  std::unique_ptr<obs::Obs> owned_obs_;  // only when no context was supplied
  obs::Obs* obs_;
  std::string metric_prefix_;
  util::Histogram* publish_cost_ = nullptr;  // owned by the registry
  // Wall-clock attribution of the two awareness hot paths.
  obs::Profiler::SiteId prof_publish_;
  obs::Profiler::SiteId prof_flush_;
};

}  // namespace coop::awareness
