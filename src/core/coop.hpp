// coop — the CSCW-aware Open Distributed Processing platform.
//
// Umbrella header: include this to get the whole public API.  The
// Platform object bundles the two process-wide substrates (the
// deterministic simulator and the network fabric) that every other
// component is constructed against.
//
// Layer map (bottom-up; see DESIGN.md for the full inventory):
//
//   sim/        discrete-event kernel, deterministic randomness
//   util/       codec, statistics
//   time/       Lamport & vector clocks
//   net/        simulated internetwork: links, faults, mobility, multicast
//   fault/      deterministic chaos plane: scripted/seeded fault injection,
//               crash-restart lifecycle, safety invariants
//   groups/     membership, reliable multicast, FIFO/causal/total order
//   rpc/        request-response, trader, group RPC with deadlines
//   ccontrol/   transactions, cooperative locks, transaction groups,
//               operational transformation, floor control
//   durable/    per-node write-ahead log, checkpoint/compaction, crash
//               recovery, anti-entropy replica catch-up
//   access/     matrix/ACL/capabilities, dynamic fine-grained roles,
//               rights negotiation
//   awareness/  focus/nimbus spatial model, weighted event engine
//   streams/    continuous media, QoS contracts & renegotiation, sync
//   mobile/     hoarding, disconnected operation, reintegration
//   mgmt/       clusters, usage monitoring, group-aware placement
//   workflow/   speech-act conversations, office procedures
//   groupware/  sessions, hyperdocuments, shared editor, conferencing,
//               flight-strip board
#pragma once

#include "access/negotiation.hpp"
#include "access/rights.hpp"
#include "access/roles.hpp"
#include "awareness/engine.hpp"
#include "awareness/spatial.hpp"
#include "ccontrol/floor.hpp"
#include "ccontrol/locks.hpp"
#include "ccontrol/ot.hpp"
#include "ccontrol/store.hpp"
#include "ccontrol/transactions.hpp"
#include "ccontrol/txgroup.hpp"
#include "durable/anti_entropy.hpp"
#include "durable/store.hpp"
#include "durable/wal.hpp"
#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "groups/group_channel.hpp"
#include "groups/membership.hpp"
#include "groupware/conference.hpp"
#include "groupware/document.hpp"
#include "groupware/editor.hpp"
#include "groupware/flightstrips.hpp"
#include "groupware/mediaspace.hpp"
#include "groupware/session.hpp"
#include "groupware/views.hpp"
#include "mgmt/placement.hpp"
#include "mgmt/qos_manager.hpp"
#include "mobile/host.hpp"
#include "mobile/share_server.hpp"
#include "net/fifo_channel.hpp"
#include "net/network.hpp"
#include "net/overload.hpp"
#include "obs/critical_path.hpp"
#include "obs/obs.hpp"
#include "rpc/group_rpc.hpp"
#include "rpc/rpc.hpp"
#include "rpc/trader.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "streams/stream.hpp"
#include "streams/sync.hpp"
#include "util/stats.hpp"
#include "workflow/procedure.hpp"
#include "workflow/speech_acts.hpp"

namespace coop {

/// The process-wide substrate pair every component is built against.
class Platform {
 public:
  /// Same seed => byte-identical experiment runs.  Metrics and traces go
  /// to @p obs if given, else the ambient default (bench harness), else a
  /// platform-owned Obs.
  explicit Platform(std::uint64_t seed = 42, obs::Obs* obs = nullptr)
      : owned_obs_(obs != nullptr || obs::default_obs() != nullptr
                       ? nullptr
                       : new obs::Obs),
        obs_(obs != nullptr ? obs
                            : (owned_obs_ ? owned_obs_.get()
                                          : obs::default_obs())),
        seed_(seed),
        sim_(seed),
        net_(sim_, obs_) {
    obs_->meta.note_platform(seed);
    // Raw fn-ptr trampolines: the step hook sits on the kernel's hottest
    // seam, so installing it must not reintroduce a type-erased call.
    sim_.set_step_hook(&Platform::trace_step, this);
    if (obs_->profiler.enabled()) {
      // Pay-for-use wall-clock attribution of every event dispatch; the
      // kernel only reads the steady clock while this is installed.
      sim_.set_step_timer(&Platform::profile_step, this);
    }
  }

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return net_; }
  [[nodiscard]] obs::Obs& obs() noexcept { return *obs_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept {
    return obs_->metrics;
  }
  [[nodiscard]] obs::Tracer& tracer() noexcept { return obs_->tracer; }

  /// Runs the virtual world to quiescence (or the event cap).
  std::size_t run(std::size_t max_events = sim::Simulator::kNoEventLimit) {
    return sim_.run(max_events);
  }
  /// Runs the virtual world up to an absolute time.
  std::size_t run_until(sim::TimePoint t) { return sim_.run_until(t); }

  /// The sharded parallel kernel, built on first use.  Seed defaults to
  /// the platform's; a lookahead of zero in @p cfg is the safe default —
  /// pass network().lookahead() to unlock windowed epochs for the
  /// topology you actually configured.  Epoch barriers are traced
  /// unconditionally (they fire on the coordinating thread); per-event
  /// step tracing and profiling are wired only for single-threaded
  /// engines, because the per-shard hooks fire on worker threads and the
  /// tracer is not synchronized (sim/shard.hpp).
  [[nodiscard]] sim::ShardedEngine& sharded_engine(
      sim::ShardedConfig cfg = {}) {
    if (!sharded_) {
      if (cfg.seed == sim::ShardedConfig{}.seed) cfg.seed = seed_;
      sharded_ = std::make_unique<sim::ShardedEngine>(cfg);
      sharded_->set_epoch_hook(&Platform::trace_epoch, this);
      if (cfg.threads <= 1) {
        sharded_->set_step_hook(&Platform::trace_shard_step, this);
        if (obs_->profiler.enabled())
          sharded_->set_step_timer(&Platform::profile_step, this);
      }
    }
    return *sharded_;
  }

 private:
  static void trace_step(void* self, sim::EventId id, sim::TimePoint when,
                         std::size_t pending) {
    auto* p = static_cast<Platform*>(self);
    p->obs_->tracer.event(when, obs::Category::kSim, "step",
                          {{"id", static_cast<double>(id)},
                           {"pending", static_cast<double>(pending)}});
  }

  static void profile_step(void* self, std::uint64_t elapsed_ns) {
    static_cast<Platform*>(self)->obs_->profiler.note_step(elapsed_ns);
  }

  static void trace_shard_step(void* self, std::uint32_t shard,
                               sim::EventId id, sim::TimePoint when,
                               std::size_t pending) {
    auto* p = static_cast<Platform*>(self);
    p->obs_->tracer.event(when, obs::Category::kSim, "step",
                          {{"shard", static_cast<double>(shard)},
                           {"id", static_cast<double>(id)},
                           {"pending", static_cast<double>(pending)}});
  }

  static void trace_epoch(void* self, sim::TimePoint t0, sim::TimePoint horizon,
                          std::size_t events) {
    auto* p = static_cast<Platform*>(self);
    p->obs_->tracer.event(t0, obs::Category::kSim, "epoch",
                          {{"horizon", static_cast<double>(horizon)},
                           {"events", static_cast<double>(events)}});
  }

  std::unique_ptr<obs::Obs> owned_obs_;  // only when no context was supplied
  obs::Obs* obs_;
  std::uint64_t seed_;
  sim::Simulator sim_;
  net::Network net_;
  std::unique_ptr<sim::ShardedEngine> sharded_;  // built on first use
};

}  // namespace coop
