#include "groupware/editor.hpp"

#include <utility>

#include "util/codec.hpp"

namespace coop::groupware {

namespace {

enum WireType : std::uint8_t { kRegister = 1, kOp = 2, kSnapshot = 3 };

void encode_op(util::Writer& w, const ccontrol::TextOp& op) {
  w.put(op.kind)
      .put(static_cast<std::uint64_t>(op.pos))
      .put_string(op.text)
      .put(op.site);
}

ccontrol::TextOp decode_op(util::Reader& r) {
  ccontrol::TextOp op;
  op.kind = r.get<ccontrol::TextOp::Kind>();
  op.pos = static_cast<std::size_t>(r.get<std::uint64_t>());
  op.text = r.get_string();
  op.site = r.get<ccontrol::SiteId>();
  return op;
}

std::string encode_op_message(const ccontrol::OtLink::Message& msg,
                              ccontrol::SiteId site,
                              sim::TimePoint originated_at) {
  util::Writer w;
  w.put(kOp).put(site).put(originated_at);
  w.put(msg.sender_generated).put(msg.sender_received);
  encode_op(w, msg.op);
  return w.take();
}

}  // namespace

// ------------------------------------------------------------ EditorServer

EditorServer::EditorServer(net::Network& net, net::Address self,
                           std::string initial)
    : net_(net), channel_(net, self), ot_(std::move(initial)) {
  channel_.on_receive([this](const net::Address& from,
                             const std::string& payload) {
    handle(from, payload);
  });
}

void EditorServer::handle(const net::Address& from,
                          const std::string& payload) {
  util::Reader r(payload);
  const auto type = r.get<std::uint8_t>();
  if (r.failed()) return;
  if (type == kRegister) {
    const auto site = r.get<ccontrol::SiteId>();
    if (r.failed()) return;
    client_addrs_[site] = from;
    ot_.add_client(site);
    // Late-join state transfer: the client adopts the server's current
    // document; every op relayed after this point (same FIFO channel, so
    // ordered after the snapshot) applies on top of it.
    util::Writer w;
    w.put(kSnapshot).put_string(ot_.doc());
    channel_.send(from, w.take());
    return;
  }
  if (type != kOp) return;
  const auto site = r.get<ccontrol::SiteId>();
  const auto originated_at = r.get<sim::TimePoint>();
  ccontrol::OtLink::Message msg;
  msg.sender_generated = r.get<std::uint64_t>();
  msg.sender_received = r.get<std::uint64_t>();
  msg.op = decode_op(r);
  if (r.failed()) return;

  const auto out = ot_.receive(site, msg);
  for (const auto& o : out) {
    auto addr = client_addrs_.find(o.to);
    if (addr == client_addrs_.end()) continue;
    // Relay with the ORIGINAL timestamp so receivers measure end-to-end
    // notification time, not just the server->client hop.
    channel_.send(addr->second,
                  encode_op_message(o.message, site, originated_at));
  }
}

// ------------------------------------------------------------ EditorClient

EditorClient::EditorClient(net::Network& net, net::Address self,
                           net::Address server, ccontrol::SiteId site,
                           std::string initial)
    : net_(net),
      server_(server),
      channel_(net, self),
      ot_(site, std::move(initial)) {
  channel_.on_receive([this](const net::Address& from,
                             const std::string& payload) {
    handle(from, payload);
  });
}

void EditorClient::connect() {
  util::Writer w;
  w.put(kRegister).put(ot_.site());
  channel_.send(server_, w.take());
}

void EditorClient::ship(const ccontrol::OtLink::Message& msg) {
  channel_.send(server_, encode_op_message(msg, ot_.site(),
                                           net_.simulator().now()));
}

void EditorClient::insert(std::size_t pos, std::string text) {
  ship(ot_.local_insert(pos, std::move(text)));
}

void EditorClient::erase(std::size_t pos, std::size_t len) {
  for (const auto& msg : ot_.local_delete_range(pos, len)) ship(msg);
}

void EditorClient::handle(const net::Address& from,
                          const std::string& payload) {
  (void)from;
  util::Reader r(payload);
  const auto type = r.get<std::uint8_t>();
  if (type == kSnapshot) {
    std::string doc = r.get_string();
    // Adopt the server state only while we have no concurrent local
    // edits in flight — otherwise the snapshot would clobber them (the
    // normal case: connect() completes before editing starts).
    if (!r.failed() && ot_.in_flight() == 0) {
      ot_ = ccontrol::OtClient(ot_.site(), std::move(doc));
      connected_ = true;
      if (on_connected_) on_connected_();
    }
    return;
  }
  if (type != kOp) return;
  r.get<ccontrol::SiteId>();  // originating site (informational)
  const auto originated_at = r.get<sim::TimePoint>();
  ccontrol::OtLink::Message msg;
  msg.sender_generated = r.get<std::uint64_t>();
  msg.sender_received = r.get<std::uint64_t>();
  msg.op = decode_op(r);
  if (r.failed()) return;
  ot_.receive(msg);
  const sim::Duration notif = net_.simulator().now() - originated_at;
  notification_.add(static_cast<double>(notif));
  if (on_remote_) on_remote_(msg.op, notif);
}

}  // namespace coop::groupware
