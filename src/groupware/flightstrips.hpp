// The electronic flight progress board — the paper's own worked example
// (§2.3, the Lancaster ATC study).
//
// Flight strips are organised in racks per reporting beacon.  The
// ethnographic findings the design must honour:
//
//   * strips are "a publicly available workspace" letting controllers
//     monitor the overall state 'at a glance' — so every change emits an
//     activity event for the awareness machinery;
//   * the board provides "a public history of the state of the sector
//     ... and with it accountability" — so an audit trail records who
//     did what, when;
//   * "manual positioning draws the attention of controllers to the new
//     arrival" — so the board supports a manual placement mode in which
//     a new strip REQUIRES an explicit position (automation of the
//     'tedious' ordering task is deliberately withheld), alongside the
//     automatic eta-ordered mode a naive design would choose.  E2's
//     sibling experiment compares the two.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ccontrol/locks.hpp"  // ClientId
#include "sim/time.hpp"

namespace coop::groupware {

/// One paper strip's electronic replacement.
struct FlightStrip {
  std::string callsign;
  std::string origin;
  std::string destination;
  sim::TimePoint eta = 0;      ///< over the rack's beacon
  int flight_level = 0;
  std::string instructions;    ///< amended as clearances are issued
  bool cocked = false;         ///< physically offset to flag attention
};

/// How new strips are positioned in a rack.
enum class StripPlacement : std::uint8_t {
  kManual,     ///< controller must choose the slot (the fielded design)
  kAutomatic,  ///< inserted in eta order (the "obvious" automation)
};

/// A change on the board, for awareness distribution and the audit trail.
struct BoardEvent {
  enum class Kind : std::uint8_t {
    kAdd,
    kMove,
    kAmend,
    kCock,
    kUncock,
    kRemove,
  };
  Kind kind;
  std::string beacon;
  std::string callsign;
  ccontrol::ClientId controller;
  sim::TimePoint at;
};

/// The shared board: racks of ordered strips.
class FlightProgressBoard {
 public:
  explicit FlightProgressBoard(StripPlacement placement)
      : placement_(placement) {}

  /// Adds a strip to @p beacon's rack.  In kManual mode @p position is
  /// required (nullopt fails — the deliberate friction); in kAutomatic
  /// mode any supplied position is ignored and eta order is used.
  bool add_strip(const std::string& beacon, FlightStrip strip,
                 std::optional<std::size_t> position,
                 ccontrol::ClientId controller, sim::TimePoint now = 0);

  /// Moves a strip within its rack (controllers re-order to encode
  /// meaning the eta alone cannot).
  bool move_strip(const std::string& beacon, const std::string& callsign,
                  std::size_t new_position, ccontrol::ClientId controller,
                  sim::TimePoint now = 0);

  /// Appends a clearance to the strip's instructions.
  bool amend(const std::string& callsign, const std::string& instruction,
             ccontrol::ClientId controller, sim::TimePoint now = 0);

  /// Cocks (offsets) a strip to flag it for attention, or straightens it.
  bool set_cocked(const std::string& callsign, bool cocked,
                  ccontrol::ClientId controller, sim::TimePoint now = 0);

  /// Removes a strip (handoff to the next sector).
  bool remove(const std::string& callsign, ccontrol::ClientId controller,
              sim::TimePoint now = 0);

  /// The rack's strips in board order.
  [[nodiscard]] std::vector<FlightStrip> rack(
      const std::string& beacon) const;

  [[nodiscard]] const FlightStrip* strip(const std::string& callsign) const;

  /// 'At a glance' derived information: flights expected over @p beacon
  /// within [from, to) — the anticipated-loading reading experienced
  /// controllers take from the physical board.
  [[nodiscard]] std::size_t anticipated_load(const std::string& beacon,
                                             sim::TimePoint from,
                                             sim::TimePoint to) const;

  /// Strips currently cocked anywhere (the problems needing attention).
  [[nodiscard]] std::vector<std::string> cocked_strips() const;

  /// The public history: every change, in order (accountability).
  [[nodiscard]] const std::vector<BoardEvent>& audit() const {
    return audit_;
  }

  /// Live change feed (wired to the awareness engine by the session).
  void on_event(std::function<void(const BoardEvent&)> fn) {
    on_event_ = std::move(fn);
  }

  [[nodiscard]] StripPlacement placement() const noexcept {
    return placement_;
  }

 private:
  struct Located {
    std::string beacon;
    std::size_t index;  ///< slot in the rack
  };
  [[nodiscard]] std::optional<Located> locate(
      const std::string& callsign) const;
  void record(BoardEvent event);

  StripPlacement placement_;
  std::map<std::string, std::vector<FlightStrip>> racks_;
  std::vector<BoardEvent> audit_;
  std::function<void(const BoardEvent&)> on_event_;
};

}  // namespace coop::groupware
