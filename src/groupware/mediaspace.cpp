#include "groupware/mediaspace.hpp"

#include <algorithm>
#include <utility>

namespace coop::groupware {

namespace {

std::pair<ClientId, ClientId> norm(ClientId a, ClientId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

MediaSpace::MediaSpace(sim::Simulator& sim, net::Network& net,
                       awareness::AwarenessEngine* engine,
                       MediaSpaceConfig config)
    : sim_(sim),
      net_(net),
      engine_(engine),
      config_(config),
      snapshot_timer_(sim, config.snapshot_period,
                      [this] { snapshot_tick(); }) {}

MediaSpace::~MediaSpace() { snapshot_timer_.stop(); }

void MediaSpace::add_office(ClientId who, net::NodeId node,
                            std::optional<awareness::Point> at) {
  offices_[who] = Office{node, DoorState::kOpen, {}};
  if (space_ != nullptr && at.has_value()) space_->place(who, *at);
}

void MediaSpace::remove_office(ClientId who) {
  // Hang up every connection involving the departing office.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->first == who || it->second == who) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  auto oit = offices_.find(who);
  if (oit != offices_.end()) {
    for (auto& [knocker, pending] : oit->second.knocks)
      sim_.cancel(pending.first);
    offices_.erase(oit);
  }
  // Retract the departing user's outstanding knocks at other doors.
  for (auto& [owner, office] : offices_) {
    auto kit = office.knocks.find(who);
    if (kit != office.knocks.end()) {
      sim_.cancel(kit->second.first);
      office.knocks.erase(kit);
    }
  }
  portholes_subscribers_.erase(who);
  if (space_ != nullptr) space_->remove(who);
}

void MediaSpace::set_door(ClientId who, DoorState state) {
  auto it = offices_.find(who);
  if (it != offices_.end()) it->second.door = state;
}

std::optional<DoorState> MediaSpace::door(ClientId who) const {
  auto it = offices_.find(who);
  if (it == offices_.end()) return std::nullopt;
  return it->second.door;
}

void MediaSpace::publish_activity(ClientId actor, const std::string& object,
                                  const std::string& verb) {
  if (engine_) engine_->publish({actor, object, verb, sim_.now()});
}

AttemptResult MediaSpace::attempt(ClientId who, ClientId target,
                                  bool connection) {
  auto it = offices_.find(target);
  if (it == offices_.end() || offices_.find(who) == offices_.end())
    return AttemptResult::kRefused;
  Office& office = it->second;
  switch (office.door) {
    case DoorState::kClosed:
      ++stats_.refusals;
      return AttemptResult::kRefused;
    case DoorState::kOpen:
      if (connection) {
        establish(who, target);
      } else {
        ++stats_.glances;
        publish_activity(who, "office/" + std::to_string(target),
                         "glances into");
      }
      return AttemptResult::kAccepted;
    case DoorState::kKnock: {
      // A knock rings the occupant and expires if unanswered.
      ++stats_.knocks;
      if (office.knocks.count(who) != 0)
        return AttemptResult::kAwaitingAnswer;  // already knocking
      const sim::EventId expiry = sim_.schedule_after(
          config_.knock_timeout, [this, who, target] {
            auto oit = offices_.find(target);
            if (oit == offices_.end()) return;
            if (oit->second.knocks.erase(who) > 0) ++stats_.knock_timeouts;
          });
      office.knocks[who] = {expiry, connection};
      if (on_knock_) on_knock_(target, who);
      publish_activity(who, "office/" + std::to_string(target),
                       "knocks at");
      return AttemptResult::kAwaitingAnswer;
    }
  }
  return AttemptResult::kRefused;
}

AttemptResult MediaSpace::glance(ClientId who, ClientId target) {
  const AttemptResult r = attempt(who, target, /*connection=*/false);
  if (r == AttemptResult::kRefused) ++stats_.glances_refused;
  return r;
}

AttemptResult MediaSpace::connect(ClientId who, ClientId target) {
  return attempt(who, target, /*connection=*/true);
}

void MediaSpace::answer(ClientId occupant, ClientId from, bool accept) {
  auto oit = offices_.find(occupant);
  if (oit == offices_.end()) return;
  auto kit = oit->second.knocks.find(from);
  if (kit == oit->second.knocks.end()) return;
  sim_.cancel(kit->second.first);
  const bool wanted_connection = kit->second.second;
  oit->second.knocks.erase(kit);
  if (!accept) {
    ++stats_.refusals;
    return;
  }
  if (wanted_connection) {
    establish(from, occupant);
  } else {
    ++stats_.glances;
    publish_activity(from, "office/" + std::to_string(occupant),
                     "glances into");
  }
}

void MediaSpace::establish(ClientId a, ClientId b) {
  if (!connections_.insert(norm(a, b)).second) return;  // already linked
  ++stats_.connections;
  publish_activity(a, "office/" + std::to_string(b), "connects to");
}

void MediaSpace::disconnect(ClientId a, ClientId b) {
  connections_.erase(norm(a, b));
}

bool MediaSpace::connected(ClientId a, ClientId b) const {
  return connections_.count(norm(a, b)) != 0;
}

std::vector<ClientId> MediaSpace::connections_of(ClientId who) const {
  std::vector<ClientId> out;
  for (const auto& [a, b] : connections_) {
    if (a == who) out.push_back(b);
    if (b == who) out.push_back(a);
  }
  return out;
}

void MediaSpace::subscribe_portholes(ClientId who) {
  portholes_subscribers_.insert(who);
}

void MediaSpace::unsubscribe_portholes(ClientId who) {
  portholes_subscribers_.erase(who);
}

void MediaSpace::start_portholes() { snapshot_timer_.start(); }
void MediaSpace::stop_portholes() { snapshot_timer_.stop(); }

void MediaSpace::snapshot_tick() {
  // Every open or knocking office publishes one snapshot to every
  // subscriber (closed doors publish nothing: the camera is covered).
  const sim::TimePoint captured = sim_.now();
  for (const auto& [office_owner, office] : offices_) {
    if (office.door == DoorState::kClosed) continue;
    for (ClientId viewer : portholes_subscribers_) {
      if (viewer == office_owner) continue;
      // Charge the network for the snapshot bytes between the two hosts.
      auto vit = offices_.find(viewer);
      if (vit == offices_.end()) continue;
      net::Message msg{.src = {office.node, 777},
                       .dst = {vit->second.node, 778},
                       .payload = {}};
      msg.wire_size = config_.snapshot_bytes;
      net_.send(std::move(msg));
      ++stats_.snapshots_delivered;
      if (on_snapshot_) on_snapshot_(viewer, office_owner, captured);
    }
  }
}

}  // namespace coop::groupware
