// Multi-user hypertext document model (§3.2.3) in the style of Quilt: a
// *base* text plus trees of suggestions, comments and annotations hanging
// off it, built independently by multiple authors.
//
// "A document in Quilt consists of a base and nodes linked to the base
// using hypertext techniques ... At any time a Quilt comment network will
// consist of a current base document, some revision suggestions, and a
// set of comments."
//
// Also here: the region vocabulary for lock-granularity experiments (E2) —
// splitting a text into document/section/paragraph/sentence/word units and
// mapping a character position to its enclosing unit's lock resource name
// (§4.2.1: "it is not clear in joint authoring applications whether locks
// should be applied at the granularity of sections, paragraphs, sentences
// or even words").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ccontrol/locks.hpp"  // ClientId
#include "sim/time.hpp"

namespace coop::groupware {

using ClientId = ccontrol::ClientId;
using DocNodeId = std::uint64_t;

/// Node kinds in the comment network.
enum class NodeKind : std::uint8_t {
  kBase,        ///< a section of the published document
  kSuggestion,  ///< a proposed revision of the node it attaches to
  kComment,     ///< discussion (may attach to any node, incl. comments)
  kAnnotation,  ///< margin note / post-it
};

/// One node of the hypertext network.
struct DocNode {
  DocNodeId id = 0;
  NodeKind kind = NodeKind::kBase;
  ClientId author = 0;
  std::string content;
  DocNodeId attached_to = 0;  ///< 0 for base nodes
  sim::TimePoint created = 0;
  bool resolved = false;  ///< suggestions: accepted/rejected and archived
};

/// The Quilt-style comment network.
class HyperDocument {
 public:
  explicit HyperDocument(std::string title) : title_(std::move(title)) {}

  /// Appends a base section.  Returns its node id.
  DocNodeId add_base(ClientId author, std::string content,
                     sim::TimePoint now = 0);

  /// Attaches a suggestion/comment/annotation to an existing node.
  /// Returns 0 if the target does not exist or the kind is kBase.
  DocNodeId attach(ClientId author, DocNodeId target, NodeKind kind,
                   std::string content, sim::TimePoint now = 0);

  /// Accepts a suggestion: its content replaces the attached base node's
  /// content; the suggestion is marked resolved.  False unless @p node
  /// is an unresolved suggestion attached to a base node.
  bool accept_suggestion(DocNodeId node);

  /// Rejects (archives) a suggestion.
  bool reject_suggestion(DocNodeId node);

  [[nodiscard]] const DocNode* node(DocNodeId id) const;

  /// Direct children of @p id (comments on a comment form threads).
  [[nodiscard]] std::vector<DocNodeId> children(DocNodeId id) const;

  /// Base nodes in document order.
  [[nodiscard]] std::vector<DocNodeId> base_nodes() const {
    return base_order_;
  }

  /// The published text: base node contents joined by blank lines.
  [[nodiscard]] std::string text() const;

  /// Unresolved suggestions (the review work list).
  [[nodiscard]] std::vector<DocNodeId> open_suggestions() const;

  /// Observer for every structural change (feeds awareness).
  void on_change(std::function<void(const DocNode&)> fn) {
    on_change_ = std::move(fn);
  }

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }

 private:
  std::string title_;
  std::map<DocNodeId, DocNode> nodes_;
  std::vector<DocNodeId> base_order_;
  DocNodeId next_id_ = 1;
  std::function<void(const DocNode&)> on_change_;
};

// ------------------------------------------------------------- granularity

/// Units at which a shared text can be locked.
enum class Granularity : std::uint8_t {
  kDocument,
  kSection,    ///< blocks separated by "\n\n"-delimited "# " headings
  kParagraph,  ///< blocks separated by blank lines
  kSentence,   ///< split on ". "
  kWord,       ///< split on whitespace
};

/// A locking unit: the resource name to lock plus its character span.
struct TextRegion {
  std::string resource;  ///< e.g. "doc/para/3"
  std::size_t begin = 0;
  std::size_t end = 0;  ///< half-open
};

/// Splits @p text into locking units at @p g.  Regions are contiguous and
/// cover the whole text (separators belong to the preceding region).
[[nodiscard]] std::vector<TextRegion> split_regions(
    const std::string& doc_name, const std::string& text, Granularity g);

/// The lock resource protecting character @p pos of @p text at @p g.
/// Falls back to the whole document if @p pos is out of range.
[[nodiscard]] std::string region_at(const std::string& doc_name,
                                    const std::string& text, Granularity g,
                                    std::size_t pos);

}  // namespace coop::groupware
