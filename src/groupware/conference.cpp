#include "groupware/conference.hpp"

#include <utility>

#include "util/codec.hpp"

namespace coop::groupware {

namespace {

enum WireType : std::uint8_t {
  kJoin = 1,       // client -> server {client_id}
  kInput = 2,      // client -> server {client_id, text}
  kFloorReq = 3,   // client -> server {client_id}
  kFloorRel = 4,   // client -> server {client_id}
  kDisplay = 5,    // server -> client {content}
  kFloor = 6,      // server -> client {holder (0 = none)}
};

}  // namespace

// --------------------------------------------------------- ConferenceServer

ConferenceServer::ConferenceServer(net::Network& net, net::Address self,
                                   std::unique_ptr<SharedApp> app,
                                   ccontrol::FloorConfig floor_config,
                                   sim::Duration refresh_period)
    : net_(net),
      channel_(net, self),
      app_(std::move(app)),
      floor_(net.simulator(), floor_config),
      refresh_(net.simulator(), refresh_period, [this] {
        // Soft-state refresh: a member whose channel is still catching
        // up converges on the latest floor state.
        broadcast_floor();
      }) {
  channel_.on_receive([this](const net::Address& from,
                             const std::string& payload) {
    handle(from, payload);
  });
  floor_.on_floor_change([this](std::optional<ClientId>,
                                std::optional<ClientId>) {
    broadcast_floor();
  });
  refresh_.start();
}

ConferenceServer::~ConferenceServer() { refresh_.stop(); }

void ConferenceServer::send_to(const net::Address& addr,
                               const std::string& wire) {
  channel_.send(addr, wire);
}

void ConferenceServer::broadcast_display() {
  ++stats_.display_updates;
  util::Writer w;
  w.put(kDisplay).put_string(app_->display());
  const std::string wire = w.take();
  for (const auto& [id, addr] : members_) send_to(addr, wire);
}

void ConferenceServer::broadcast_floor() {
  util::Writer w;
  w.put(kFloor).put(floor_.holder().value_or(0));
  const std::string wire = w.take();
  for (const auto& [id, addr] : members_) send_to(addr, wire);
}

void ConferenceServer::handle(const net::Address& from,
                              const std::string& payload) {
  util::Reader r(payload);
  const auto type = r.get<std::uint8_t>();
  const auto client = r.get<ClientId>();
  if (r.failed()) return;
  switch (type) {
    case kJoin: {
      members_[client] = from;
      // Late joiners get the current state immediately.
      util::Writer w;
      w.put(kDisplay).put_string(app_->display());
      send_to(from, w.take());
      util::Writer wf;
      wf.put(kFloor).put(floor_.holder().value_or(0));
      send_to(from, wf.take());
      break;
    }
    case kInput: {
      const std::string text = r.get_string();
      if (r.failed()) return;
      // The multidrop filter: only the floor holder's input reaches the
      // application, preserving its single-user illusion.
      if (floor_.holder() != client) {
        ++stats_.inputs_rejected;
        return;
      }
      ++stats_.inputs_accepted;
      app_->process(text);
      broadcast_display();
      break;
    }
    case kFloorReq:
      floor_.request(client, nullptr);
      break;
    case kFloorRel:
      floor_.release(client);
      break;
    default:
      break;
  }
}

// --------------------------------------------------------- ConferenceClient

ConferenceClient::ConferenceClient(net::Network& net, net::Address self,
                                   net::Address server, ClientId id)
    : channel_(net, self), server_(server), id_(id) {
  channel_.on_receive([this](const net::Address&,
                             const std::string& payload) {
    handle(payload);
  });
}

void ConferenceClient::send_simple(std::uint8_t type,
                                   const std::string& body) {
  util::Writer w;
  w.put(type).put(id_);
  if (!body.empty()) w.put_string(body);
  channel_.send(server_, w.take());
}

void ConferenceClient::join() { send_simple(kJoin); }

void ConferenceClient::send_input(const std::string& input) {
  util::Writer w;
  w.put(static_cast<std::uint8_t>(kInput)).put(id_).put_string(input);
  channel_.send(server_, w.take());
}

void ConferenceClient::request_floor() { send_simple(kFloorReq); }
void ConferenceClient::release_floor() { send_simple(kFloorRel); }

void ConferenceClient::handle(const std::string& payload) {
  util::Reader r(payload);
  const auto type = r.get<std::uint8_t>();
  if (r.failed()) return;
  if (type == kDisplay) {
    display_ = r.get_string();
    if (!r.failed() && on_display_) on_display_(display_);
  } else if (type == kFloor) {
    const auto holder = r.get<ClientId>();
    if (r.failed()) return;
    if (holder == 0) {
      floor_holder_.reset();
    } else {
      floor_holder_ = holder;
    }
  }
}

}  // namespace coop::groupware
