// Session classification on Johansen's space-time matrix (Figure 1 of the
// paper) and the infrastructure defaults each quadrant implies.
//
//                    Same Time            Different Time
//   Same Place       face-to-face         asynchronous interaction
//   Different Places synchronous distrib. asynchronous distributed
//
// The paper stresses that real work "switches rapidly between
// asynchronous and synchronous interactions" and needs seamless
// transitions — so the classification is a live property of a Session,
// not a static type: reclassify() moves a session between quadrants and
// the recommended infrastructure parameters move with it (experiment F1
// measures all four corners).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "awareness/engine.hpp"
#include "groups/group_channel.hpp"
#include "groups/membership.hpp"
#include "net/link.hpp"
#include "sim/time.hpp"

namespace coop::groupware {

/// Geographic dimension (logical accessibility, not strict geometry).
enum class Place : std::uint8_t { kSame, kDifferent };

/// Temporal dimension.
enum class Tempo : std::uint8_t { kSame, kDifferent };

/// A cell of the matrix.
struct SpaceTimeClass {
  Place place = Place::kSame;
  Tempo tempo = Tempo::kSame;

  [[nodiscard]] const char* quadrant() const noexcept {
    if (place == Place::kSame && tempo == Tempo::kSame)
      return "face-to-face interaction";
    if (place == Place::kSame) return "asynchronous interaction";
    if (tempo == Tempo::kSame) return "synchronous distributed interaction";
    return "asynchronous distributed interaction";
  }

  /// The link regime connecting participants in this quadrant.
  [[nodiscard]] net::LinkModel recommended_link() const {
    return place == Place::kSame ? net::LinkModel::lan()
                                 : net::LinkModel::wan();
  }

  /// Synchronous quadrants want total order (everyone sees one
  /// interleaving as it happens); asynchronous ones get by with causal
  /// order (history coherence without a sequencer round-trip).
  [[nodiscard]] groups::Ordering recommended_ordering() const {
    return tempo == Tempo::kSame ? groups::Ordering::kTotal
                                 : groups::Ordering::kCausal;
  }

  /// Awareness digest cadence: tight for synchronous work, relaxed for
  /// asynchronous catch-up.
  [[nodiscard]] sim::Duration recommended_digest_period() const {
    return tempo == Tempo::kSame ? sim::msec(500) : sim::sec(30);
  }

  /// Temporal-interest e-folding: synchronous work forgets fast (attention
  /// tracks the live meeting), asynchronous work keeps long memory so a
  /// returning collaborator still hears about "their" objects.
  [[nodiscard]] sim::Duration recommended_interest_decay() const {
    return tempo == Tempo::kSame ? sim::sec(60) : sim::minutes(30);
  }

  /// The awareness-engine knobs this quadrant implies, bundled so session
  /// hosts can construct an engine from the classification alone.
  [[nodiscard]] awareness::EngineConfig recommended_engine_config() const {
    awareness::EngineConfig cfg;
    cfg.digest_period = recommended_digest_period();
    cfg.interest_decay = recommended_interest_decay();
    return cfg;
  }

  bool operator==(const SpaceTimeClass&) const = default;
};

/// A named cooperative session carrying its (mutable) classification.
class Session {
 public:
  Session(std::string name, SpaceTimeClass klass)
      : name_(std::move(name)), class_(klass) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const SpaceTimeClass& classification() const noexcept {
    return class_;
  }

  /// Seamless transition between quadrants (e.g. a co-authoring session
  /// going synchronous for a review meeting).  Returns true if the
  /// quadrant actually changed.
  bool reclassify(SpaceTimeClass next) {
    if (next == class_) return false;
    class_ = next;
    ++transitions_;
    return true;
  }

  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }

 private:
  std::string name_;
  SpaceTimeClass class_;
  std::uint64_t transitions_ = 0;
};

/// One participant's binding of the membership plane to a group channel.
///
/// The two planes were previously wired by hand in every harness: the
/// membership failure detector noticed a crash, and *some* glue had to
/// call GroupChannel::mark_failed so the ack quorum shrank and — for
/// kTotal — sequencer failover ran.  SessionGroup owns that glue: every
/// installed view is diffed against the set of nodes ever seen in a view,
/// and a node that disappears is marked failed on the channel exactly
/// once.  Because MembershipMember itself follows a moving coordinator
/// (lease expiry → claim → takeover), the pair survives coordinator *and*
/// sequencer failover with no harness involvement.
///
/// Channel slots are append-only, so the full roster (identical order at
/// every participant) is fixed at construction; membership controls which
/// of those slots count, not which exist.
/// Well-known ports a participant node uses for each plane. (Namespace
/// scope so it is complete when used as a default constructor argument.)
struct SessionPorts {
  net::PortId membership = 1;
  net::PortId channel = 10;
};

class SessionGroup {
 public:
  using Ports = SessionPorts;

  SessionGroup(net::Network& net, net::NodeId node,
               std::vector<net::NodeId> roster, net::Address coordinator,
               net::McastId group, Ports ports = Ports(),
               groups::MembershipConfig membership_config = {},
               groups::ChannelConfig channel_config = {})
      : node_(node),
        roster_(std::move(roster)),
        ports_(ports),
        member_(net, {node, ports.membership}, coordinator,
                membership_config),
        channel_(net, {node, ports.channel}, group, channel_config) {
    std::vector<net::Address> slots;
    slots.reserve(roster_.size());
    for (const net::NodeId n : roster_) slots.push_back({n, ports_.channel});
    channel_.set_members(slots);
    channel_.on_deliver([this](const groups::Delivery& d) {
      if (excluded_) return;  // not in the current view: stay silent
      if (deliver_) deliver_(d);
    });
    member_.on_view([this](const groups::View& v) { handle_view(v); });
  }

  void join() { member_.join(); }
  void leave() { member_.leave(); }

  [[nodiscard]] std::uint64_t broadcast(std::string payload,
                                        const obs::CausalContext& parent = {}) {
    return channel_.broadcast(std::move(payload), parent);
  }

  void on_deliver(groups::GroupChannel::DeliverFn fn) {
    deliver_ = std::move(fn);
  }
  void on_view(std::function<void(const groups::View&)> fn) {
    on_view_ = std::move(fn);
  }

  [[nodiscard]] groups::MembershipMember& member() noexcept { return member_; }
  [[nodiscard]] groups::GroupChannel& channel() noexcept { return channel_; }
  /// True while this participant was dropped from the installed view
  /// (evicted, or partitioned away): deliveries are suppressed so the
  /// application never acts on traffic the group no longer means for it.
  [[nodiscard]] bool excluded() const noexcept { return excluded_; }

 private:
  void handle_view(const groups::View& v) {
    std::set<net::NodeId> present;
    for (const auto& a : v.members) present.insert(a.node);
    for (const net::NodeId n : present) ever_present_.insert(n);
    excluded_ = ever_present_.count(node_) != 0 && present.count(node_) == 0;
    for (const net::NodeId n : ever_present_) {
      if (n == node_ || present.count(n) != 0) continue;
      // First disappearance only: slots stay dead once failed, and a
      // flapping member re-admitted by membership keeps broadcasting on
      // its (still attached) channel endpoint — it just stops counting
      // toward ack quorums.
      if (failed_.insert(n).second) channel_.mark_failed({n, ports_.channel});
    }
    if (on_view_) on_view_(v);
  }

  net::NodeId node_;
  std::vector<net::NodeId> roster_;
  Ports ports_;
  groups::MembershipMember member_;
  groups::GroupChannel channel_;
  groups::GroupChannel::DeliverFn deliver_;
  std::function<void(const groups::View&)> on_view_;
  std::set<net::NodeId> ever_present_;
  std::set<net::NodeId> failed_;
  bool excluded_ = false;
};

}  // namespace coop::groupware
