// Session classification on Johansen's space-time matrix (Figure 1 of the
// paper) and the infrastructure defaults each quadrant implies.
//
//                    Same Time            Different Time
//   Same Place       face-to-face         asynchronous interaction
//   Different Places synchronous distrib. asynchronous distributed
//
// The paper stresses that real work "switches rapidly between
// asynchronous and synchronous interactions" and needs seamless
// transitions — so the classification is a live property of a Session,
// not a static type: reclassify() moves a session between quadrants and
// the recommended infrastructure parameters move with it (experiment F1
// measures all four corners).
#pragma once

#include <cstdint>
#include <string>

#include "awareness/engine.hpp"
#include "groups/group_channel.hpp"
#include "net/link.hpp"
#include "sim/time.hpp"

namespace coop::groupware {

/// Geographic dimension (logical accessibility, not strict geometry).
enum class Place : std::uint8_t { kSame, kDifferent };

/// Temporal dimension.
enum class Tempo : std::uint8_t { kSame, kDifferent };

/// A cell of the matrix.
struct SpaceTimeClass {
  Place place = Place::kSame;
  Tempo tempo = Tempo::kSame;

  [[nodiscard]] const char* quadrant() const noexcept {
    if (place == Place::kSame && tempo == Tempo::kSame)
      return "face-to-face interaction";
    if (place == Place::kSame) return "asynchronous interaction";
    if (tempo == Tempo::kSame) return "synchronous distributed interaction";
    return "asynchronous distributed interaction";
  }

  /// The link regime connecting participants in this quadrant.
  [[nodiscard]] net::LinkModel recommended_link() const {
    return place == Place::kSame ? net::LinkModel::lan()
                                 : net::LinkModel::wan();
  }

  /// Synchronous quadrants want total order (everyone sees one
  /// interleaving as it happens); asynchronous ones get by with causal
  /// order (history coherence without a sequencer round-trip).
  [[nodiscard]] groups::Ordering recommended_ordering() const {
    return tempo == Tempo::kSame ? groups::Ordering::kTotal
                                 : groups::Ordering::kCausal;
  }

  /// Awareness digest cadence: tight for synchronous work, relaxed for
  /// asynchronous catch-up.
  [[nodiscard]] sim::Duration recommended_digest_period() const {
    return tempo == Tempo::kSame ? sim::msec(500) : sim::sec(30);
  }

  /// Temporal-interest e-folding: synchronous work forgets fast (attention
  /// tracks the live meeting), asynchronous work keeps long memory so a
  /// returning collaborator still hears about "their" objects.
  [[nodiscard]] sim::Duration recommended_interest_decay() const {
    return tempo == Tempo::kSame ? sim::sec(60) : sim::minutes(30);
  }

  /// The awareness-engine knobs this quadrant implies, bundled so session
  /// hosts can construct an engine from the classification alone.
  [[nodiscard]] awareness::EngineConfig recommended_engine_config() const {
    awareness::EngineConfig cfg;
    cfg.digest_period = recommended_digest_period();
    cfg.interest_decay = recommended_interest_decay();
    return cfg;
  }

  bool operator==(const SpaceTimeClass&) const = default;
};

/// A named cooperative session carrying its (mutable) classification.
class Session {
 public:
  Session(std::string name, SpaceTimeClass klass)
      : name_(std::move(name)), class_(klass) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const SpaceTimeClass& classification() const noexcept {
    return class_;
  }

  /// Seamless transition between quadrants (e.g. a co-authoring session
  /// going synchronous for a review meeting).  Returns true if the
  /// quadrant actually changed.
  bool reclassify(SpaceTimeClass next) {
    if (next == class_) return false;
    class_ = next;
    ++transitions_;
    return true;
  }

  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }

 private:
  std::string name_;
  SpaceTimeClass class_;
  std::uint64_t transitions_ = 0;
};

}  // namespace coop::groupware
