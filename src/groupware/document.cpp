#include "groupware/document.hpp"

#include <algorithm>
#include <utility>

namespace coop::groupware {

DocNodeId HyperDocument::add_base(ClientId author, std::string content,
                                  sim::TimePoint now) {
  const DocNodeId id = next_id_++;
  DocNode node{id, NodeKind::kBase, author, std::move(content), 0, now,
               false};
  nodes_[id] = node;
  base_order_.push_back(id);
  if (on_change_) on_change_(nodes_[id]);
  return id;
}

DocNodeId HyperDocument::attach(ClientId author, DocNodeId target,
                                NodeKind kind, std::string content,
                                sim::TimePoint now) {
  if (kind == NodeKind::kBase) return 0;
  if (nodes_.find(target) == nodes_.end()) return 0;
  const DocNodeId id = next_id_++;
  DocNode node{id, kind, author, std::move(content), target, now, false};
  nodes_[id] = node;
  if (on_change_) on_change_(nodes_[id]);
  return id;
}

bool HyperDocument::accept_suggestion(DocNodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.kind != NodeKind::kSuggestion ||
      it->second.resolved) {
    return false;
  }
  auto target = nodes_.find(it->second.attached_to);
  if (target == nodes_.end() || target->second.kind != NodeKind::kBase)
    return false;
  target->second.content = it->second.content;
  it->second.resolved = true;
  if (on_change_) on_change_(target->second);
  return true;
}

bool HyperDocument::reject_suggestion(DocNodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.kind != NodeKind::kSuggestion ||
      it->second.resolved) {
    return false;
  }
  it->second.resolved = true;
  if (on_change_) on_change_(it->second);
  return true;
}

const DocNode* HyperDocument::node(DocNodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<DocNodeId> HyperDocument::children(DocNodeId id) const {
  std::vector<DocNodeId> out;
  for (const auto& [nid, node] : nodes_) {
    if (node.attached_to == id) out.push_back(nid);
  }
  return out;
}

std::string HyperDocument::text() const {
  std::string out;
  for (DocNodeId id : base_order_) {
    if (!out.empty()) out += "\n\n";
    out += nodes_.at(id).content;
  }
  return out;
}

std::vector<DocNodeId> HyperDocument::open_suggestions() const {
  std::vector<DocNodeId> out;
  for (const auto& [id, node] : nodes_) {
    if (node.kind == NodeKind::kSuggestion && !node.resolved)
      out.push_back(id);
  }
  return out;
}

// ------------------------------------------------------------- granularity

namespace {

/// Splits on a separator, emitting half-open spans that include the
/// separator with the preceding span.
std::vector<std::pair<std::size_t, std::size_t>> spans_by_separator(
    const std::string& text, const std::string& sep) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t begin = 0;
  std::size_t pos = 0;
  while ((pos = text.find(sep, begin)) != std::string::npos) {
    spans.emplace_back(begin, pos + sep.size());
    begin = pos + sep.size();
  }
  if (begin < text.size() || spans.empty())
    spans.emplace_back(begin, text.size());
  return spans;
}

/// Sentence spans: split after '.' followed by whitespace (space or
/// newline); the separator pair joins the preceding sentence.
std::vector<std::pair<std::size_t, std::size_t>> sentence_spans(
    const std::string& text) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t begin = 0;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '.' && (text[i + 1] == ' ' || text[i + 1] == '\n')) {
      spans.emplace_back(begin, i + 2);
      begin = i + 2;
    }
  }
  if (begin < text.size() || spans.empty())
    spans.emplace_back(begin, text.size());
  return spans;
}

/// Word spans: one span per word start; trailing whitespace joins the
/// preceding word and leading whitespace joins the first, so the spans
/// are contiguous and cover the text.
std::vector<std::pair<std::size_t, std::size_t>> word_spans(
    const std::string& text) {
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\n' || c == '\t';
  };
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (!is_ws(text[i]) && (i == 0 || is_ws(text[i - 1])))
      starts.push_back(i);
  }
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  if (starts.empty()) {
    spans.emplace_back(0, text.size());
    return spans;
  }
  starts.front() = 0;
  for (std::size_t k = 0; k < starts.size(); ++k) {
    const std::size_t end =
        k + 1 < starts.size() ? starts[k + 1] : text.size();
    spans.emplace_back(starts[k], end);
  }
  return spans;
}

}  // namespace

std::vector<TextRegion> split_regions(const std::string& doc_name,
                                      const std::string& text,
                                      Granularity g) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::string tag;
  switch (g) {
    case Granularity::kDocument:
      spans.emplace_back(0, text.size());
      tag = "doc";
      break;
    case Granularity::kSection:
      spans = spans_by_separator(text, "\n\n# ");
      tag = "sec";
      break;
    case Granularity::kParagraph:
      spans = spans_by_separator(text, "\n\n");
      tag = "para";
      break;
    case Granularity::kSentence:
      spans = sentence_spans(text);
      tag = "sent";
      break;
    case Granularity::kWord:
      spans = word_spans(text);
      tag = "word";
      break;
  }
  std::vector<TextRegion> out;
  out.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    out.push_back({doc_name + "/" + tag + "/" + std::to_string(i),
                   spans[i].first, spans[i].second});
  }
  return out;
}

std::string region_at(const std::string& doc_name, const std::string& text,
                      Granularity g, std::size_t pos) {
  const auto regions = split_regions(doc_name, text, g);
  for (const TextRegion& r : regions) {
    if (pos >= r.begin && pos < r.end) return r.resource;
  }
  // Appending at the very end (or an empty document) maps to the final
  // region; anything else falls back to the whole document.
  if (!regions.empty() && pos >= regions.back().begin)
    return regions.back().resource;
  return doc_name + "/doc/0";
}

}  // namespace coop::groupware
