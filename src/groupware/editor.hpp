// The shared text editor: GROVE-style real-time group editing, wired
// end-to-end — OT engine (ccontrol/ot.hpp) over reliable FIFO channels on
// the simulated network.
//
// Local edits apply immediately (response time ≈ 0, the OT selling point
// of §4.2.1); remote edits arrive transformed and carry the originating
// timestamp so notification time is measured directly (Ellis's second
// real-time requirement).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ccontrol/ot.hpp"
#include "net/fifo_channel.hpp"
#include "net/network.hpp"
#include "util/stats.hpp"

namespace coop::groupware {

/// Hosts the authoritative OT replica and relays transformed operations.
class EditorServer {
 public:
  EditorServer(net::Network& net, net::Address self,
               std::string initial = {});

  /// Server's view of the document (converged state).
  [[nodiscard]] const std::string& doc() const { return ot_.doc(); }
  [[nodiscard]] net::Address address() const { return channel_.self(); }
  [[nodiscard]] std::size_t client_count() const {
    return ot_.client_count();
  }

 private:
  void handle(const net::Address& from, const std::string& payload);

  net::Network& net_;
  net::FifoChannel channel_;
  ccontrol::OtServer ot_;
  std::map<ccontrol::SiteId, net::Address> client_addrs_;
};

/// A participant's replica.
class EditorClient {
 public:
  EditorClient(net::Network& net, net::Address self, net::Address server,
               ccontrol::SiteId site, std::string initial = {});

  /// Announces this client to the server (must precede edits).  The
  /// server answers with a state snapshot; editing before on_connected
  /// fires risks losing remote operations that predate the registration.
  void connect();

  /// True once the server's join snapshot has been installed.
  [[nodiscard]] bool connected() const noexcept { return connected_; }

  /// Fired when the join snapshot lands and editing is safe.
  void on_connected(std::function<void()> fn) {
    on_connected_ = std::move(fn);
  }

  /// Local edits: applied instantly, shipped asynchronously.
  void insert(std::size_t pos, std::string text);
  void erase(std::size_t pos, std::size_t len = 1);

  [[nodiscard]] const std::string& doc() const { return ot_.doc(); }
  [[nodiscard]] ccontrol::SiteId site() const { return ot_.site(); }

  /// Fired when a remote operation lands, with the notification time
  /// (originating site's send time -> local apply, virtual µs).
  void on_remote_change(
      std::function<void(const ccontrol::TextOp&, sim::Duration)> fn) {
    on_remote_ = std::move(fn);
  }

  /// Notification-time distribution across all remote ops received.
  [[nodiscard]] const util::Summary& notification_time() const {
    return notification_;
  }

 private:
  void handle(const net::Address& from, const std::string& payload);
  void ship(const ccontrol::OtLink::Message& msg);

  net::Network& net_;
  net::Address server_;
  net::FifoChannel channel_;
  ccontrol::OtClient ot_;
  bool connected_ = false;
  std::function<void()> on_connected_;
  std::function<void(const ccontrol::TextOp&, sim::Duration)> on_remote_;
  util::Summary notification_;
};

}  // namespace coop::groupware
