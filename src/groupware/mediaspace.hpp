// Media spaces — §3.3.2: "a range of multimedia systems ... with the
// intent of forming distributed shared *media spaces* across a user
// community", with the room/door metaphor of virtual-office systems and
// the asynchronous Portholes mode.
//
// A MediaSpace is a community of offices.  Each office has a *door state*
// governing connection attempts (the social-accessibility control of
// Cruiser/RAVE):
//
//   kOpen   — glances and connections succeed immediately;
//   kKnock  — a connection attempt notifies the occupant, who must accept
//             (or the attempt expires);
//   kClosed — attempts are refused outright (glances too).
//
// Two interaction styles:
//   * glance(a, b): a few-second one-way look — the lightweight social
//     browsing Cruiser pioneered; produces an awareness event.
//   * connect(a, b): a sustained two-way A/V link, modelled as a pair of
//     media streams bound through the network with a QoS contract.
//   * Portholes mode: each office periodically multicasts a low-rate
//     snapshot frame to every subscriber — background awareness across
//     the community without connections.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "awareness/engine.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "streams/stream.hpp"

namespace coop::groupware {

using ClientId = ccontrol::ClientId;

/// Social accessibility of an office.
enum class DoorState : std::uint8_t { kOpen, kKnock, kClosed };

/// Outcome of a glance or connection attempt.
enum class AttemptResult : std::uint8_t {
  kAccepted,
  kAwaitingAnswer,  ///< knock pending; occupant must answer
  kRefused,         ///< closed door (or explicit refusal)
};

struct MediaSpaceConfig {
  /// Unanswered knocks expire (and refuse) after this long.
  sim::Duration knock_timeout = sim::sec(15);
  /// Portholes snapshot cadence per publishing office.
  sim::Duration snapshot_period = sim::sec(60);
  /// Snapshot wire size (tiny digitized image, as in Portholes).
  std::size_t snapshot_bytes = 6000;
};

/// The community media space.  One instance per site cluster; the
/// network carries snapshots and the streams carry live connections.
class MediaSpace {
 public:
  MediaSpace(sim::Simulator& sim, net::Network& net,
             awareness::AwarenessEngine* engine = nullptr,
             MediaSpaceConfig config = {});
  ~MediaSpace();

  MediaSpace(const MediaSpace&) = delete;
  MediaSpace& operator=(const MediaSpace&) = delete;

  // --- offices ---------------------------------------------------------------

  /// Mirrors offices into @p space (the community floor plan): offices
  /// added with a position are placed there and removed on
  /// remove_office(), so the awareness engine's spatial candidate sets
  /// follow the office layout.  Pass nullptr to unbind.
  void bind_space(awareness::SpatialModel* space) { space_ = space; }

  /// Adds an office for @p who, hosted on @p node, initially kOpen.  With
  /// @p at and a bound SpatialModel, the occupant is placed on the floor
  /// plan at that position.
  void add_office(ClientId who, net::NodeId node,
                  std::optional<awareness::Point> at = std::nullopt);
  void remove_office(ClientId who);
  void set_door(ClientId who, DoorState state);
  [[nodiscard]] std::optional<DoorState> door(ClientId who) const;

  // --- glances ---------------------------------------------------------------

  /// One-way look into @p target's office.  Succeeds through open doors;
  /// knocking doors treat a glance like a knock; closed doors refuse.
  AttemptResult glance(ClientId who, ClientId target);

  // --- connections ------------------------------------------------------------

  /// Attempts a sustained A/V connection.  On kAwaitingAnswer the
  /// occupant must call answer(); on acceptance both parties appear in
  /// each other's connection lists and a stream pair is established.
  AttemptResult connect(ClientId who, ClientId target);

  /// The occupant answers the (single) pending knock from @p from.
  void answer(ClientId occupant, ClientId from, bool accept);

  /// Tears down an established connection (either side may hang up).
  void disconnect(ClientId a, ClientId b);

  [[nodiscard]] bool connected(ClientId a, ClientId b) const;
  [[nodiscard]] std::vector<ClientId> connections_of(ClientId who) const;

  /// Fired when a knock lands at the occupant (their UI rings).
  void on_knock(std::function<void(ClientId occupant, ClientId from)> fn) {
    on_knock_ = std::move(fn);
  }

  // --- Portholes --------------------------------------------------------------

  /// Subscribes @p who to everyone's periodic snapshots.
  void subscribe_portholes(ClientId who);
  void unsubscribe_portholes(ClientId who);

  /// Snapshot delivery hook: (viewer, office pictured, capture time).
  void on_snapshot(
      std::function<void(ClientId viewer, ClientId office,
                         sim::TimePoint captured)>
          fn) {
    on_snapshot_ = std::move(fn);
  }

  /// Starts/stops the snapshot clock (off by default).
  void start_portholes();
  void stop_portholes();

  struct Stats {
    std::uint64_t glances = 0;
    std::uint64_t glances_refused = 0;
    std::uint64_t knocks = 0;
    std::uint64_t knock_timeouts = 0;
    std::uint64_t connections = 0;
    std::uint64_t refusals = 0;
    std::uint64_t snapshots_delivered = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Office {
    net::NodeId node = 0;
    DoorState door = DoorState::kOpen;
    /// Pending knocks: knocker -> (expiry event, wants_connection).
    std::map<ClientId, std::pair<sim::EventId, bool>> knocks;
  };

  void publish_activity(ClientId actor, const std::string& object,
                        const std::string& verb);
  AttemptResult attempt(ClientId who, ClientId target, bool connection);
  void establish(ClientId a, ClientId b);
  void snapshot_tick();

  sim::Simulator& sim_;
  net::Network& net_;
  awareness::AwarenessEngine* engine_;
  awareness::SpatialModel* space_ = nullptr;
  MediaSpaceConfig config_;
  std::map<ClientId, Office> offices_;
  std::set<std::pair<ClientId, ClientId>> connections_;  // normalized a<b
  std::set<ClientId> portholes_subscribers_;
  std::function<void(ClientId, ClientId)> on_knock_;
  std::function<void(ClientId, ClientId, sim::TimePoint)> on_snapshot_;
  sim::PeriodicTimer snapshot_timer_;
  Stats stats_;
};

}  // namespace coop::groupware
