// Collaboration-transparent desktop conferencing (§3.2.2): an unmodified
// single-user application shared by a group.
//
// "As the application is unaware of the presence of more than one user,
// it is necessary to multicast display output and multidrop user input so
// that the application deals with a single stream of output and input
// events.  To avoid confusion, users must take turns in interacting with
// the application; this is achieved by adopting an appropriate floor
// control policy."  (Rapport / SharedX / MMConf.)
//
// The ConferenceServer hosts the SharedApp and the floor; clients send
// input (accepted only from the floor holder — the multidrop filter) and
// receive display updates.  Any ccontrol::FloorPolicy can arbitrate.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ccontrol/floor.hpp"
#include "net/fifo_channel.hpp"
#include "net/network.hpp"

namespace coop::groupware {

using ClientId = ccontrol::ClientId;

/// The single-user application being shared; it knows nothing about the
/// conference (collaboration transparency).
class SharedApp {
 public:
  virtual ~SharedApp() = default;
  /// Processes one input event; returns the new display content.
  virtual std::string process(const std::string& input) = 0;
  [[nodiscard]] virtual const std::string& display() const = 0;
};

/// A trivial terminal-like app for tests and examples: inputs append
/// lines to the display.
class TerminalApp final : public SharedApp {
 public:
  std::string process(const std::string& input) override {
    if (!display_.empty()) display_ += '\n';
    display_ += input;
    return display_;
  }
  [[nodiscard]] const std::string& display() const override {
    return display_;
  }

 private:
  std::string display_;
};

struct ConferenceStats {
  std::uint64_t inputs_accepted = 0;
  std::uint64_t inputs_rejected = 0;  ///< sent without holding the floor
  std::uint64_t display_updates = 0;
};

/// Hosts the shared application and the floor.
///
/// Transport: all conference traffic rides reliable FIFO channels, so a
/// lost join/request/release datagram delays (never wedges) the session.
/// Display and floor state are additionally *soft state*: the server
/// re-broadcasts them at @p refresh_period, so even a member whose
/// channel is catching up converges.  NOTE: the refresh timer runs for
/// the server's lifetime — drive simulations containing a conference
/// with run_until(), not run().
class ConferenceServer {
 public:
  ConferenceServer(net::Network& net, net::Address self,
                   std::unique_ptr<SharedApp> app,
                   ccontrol::FloorConfig floor_config = {},
                   sim::Duration refresh_period = sim::sec(1));
  ~ConferenceServer();

  ConferenceServer(const ConferenceServer&) = delete;
  ConferenceServer& operator=(const ConferenceServer&) = delete;

  [[nodiscard]] const SharedApp& app() const { return *app_; }
  [[nodiscard]] ccontrol::FloorControl& floor() { return floor_; }
  [[nodiscard]] const ConferenceStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

 private:
  void handle(const net::Address& from, const std::string& payload);
  void broadcast_display();
  void broadcast_floor();
  void send_to(const net::Address& addr, const std::string& wire);

  net::Network& net_;
  net::FifoChannel channel_;
  std::unique_ptr<SharedApp> app_;
  ccontrol::FloorControl floor_;
  std::map<ClientId, net::Address> members_;
  sim::PeriodicTimer refresh_;
  ConferenceStats stats_;
};

/// One participant.
class ConferenceClient {
 public:
  ConferenceClient(net::Network& net, net::Address self,
                   net::Address server, ClientId id);

  ConferenceClient(const ConferenceClient&) = delete;
  ConferenceClient& operator=(const ConferenceClient&) = delete;

  void join();
  /// Sends an input event; silently dropped by the server unless this
  /// client holds the floor.
  void send_input(const std::string& input);
  void request_floor();
  void release_floor();

  [[nodiscard]] const std::string& display() const { return display_; }
  [[nodiscard]] bool has_floor() const { return floor_holder_ == id_; }
  [[nodiscard]] std::optional<ClientId> floor_holder() const {
    return floor_holder_;
  }

  void on_display(std::function<void(const std::string&)> fn) {
    on_display_ = std::move(fn);
  }

 private:
  void handle(const std::string& payload);
  void send_simple(std::uint8_t type, const std::string& body = {});

  net::FifoChannel channel_;
  net::Address server_;
  ClientId id_;
  std::string display_;
  std::optional<ClientId> floor_holder_;
  std::function<void(const std::string&)> on_display_;
};

}  // namespace coop::groupware
