// Relaxed-WYSIWIS shared views — the collaboration-aware presentation
// layer of §3.2.2.
//
// "Collaboration aware solutions provide facilities to explicitly manage
// the sharing of information, allowing sharing to be presented in a
// variety of different ways to different users."  And the critique coop
// answers: "applications tend to encapsulate the decisions as to how
// information is presented and modified.  This lack of visibility
// inhibits tailoring of the sharing policy in conferences."
//
// A SharedViewSpace holds one shared set of items; every participant owns
// a ViewSpec — a *named, inspectable, runtime-replaceable* policy (filter
// + presentation + ordering) deciding how the shared state appears to
// them.  The spec being a first-class visible object is the point: the
// sharing policy is not baked into the application.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ccontrol/locks.hpp"  // ClientId
#include "sim/time.hpp"

namespace coop::groupware {

/// One shared item with its provenance.
struct ViewItem {
  std::string key;
  std::string value;
  ccontrol::ClientId author = 0;
  sim::TimePoint modified = 0;
};

/// A participant's presentation policy — visible and replaceable.
struct ViewSpec {
  enum class Order : std::uint8_t { kByKey, kByRecency, kByAuthor };

  /// Human-readable description shown to other participants (the
  /// visibility requirement).
  std::string name = "full detail";
  /// Which items this user sees (nullptr = all).
  std::function<bool(const ViewItem&)> filter;
  /// How an item renders for this user (nullptr = "key: value").
  std::function<std::string(const ViewItem&)> present;
  Order order = Order::kByKey;

  // ---- canned policies -----------------------------------------------------

  /// Everything, fully rendered.
  static ViewSpec full_detail() { return {}; }

  /// Keys only — a headline/overview view.
  static ViewSpec headlines() {
    ViewSpec spec;
    spec.name = "headlines";
    spec.present = [](const ViewItem& item) { return item.key; };
    return spec;
  }

  /// Only items authored by @p who, newest first — a review view.
  static ViewSpec by_author(ccontrol::ClientId who) {
    ViewSpec spec;
    spec.name = "items by user " + std::to_string(who);
    spec.filter = [who](const ViewItem& item) { return item.author == who; };
    spec.order = Order::kByRecency;
    return spec;
  }

  /// Items touched since @p since, newest first — a what's-new view.
  static ViewSpec recent(sim::TimePoint since) {
    ViewSpec spec;
    spec.name = "changes since t=" + std::to_string(since);
    spec.filter = [since](const ViewItem& item) {
      return item.modified >= since;
    };
    spec.order = Order::kByRecency;
    return spec;
  }
};

/// The shared space plus everyone's view policies.
class SharedViewSpace {
 public:
  // --- shared state ----------------------------------------------------------

  /// Inserts or updates an item.
  void put(ccontrol::ClientId author, const std::string& key,
           std::string value, sim::TimePoint now = 0) {
    auto& item = items_[key];
    item.key = key;
    item.value = std::move(value);
    item.author = author;
    item.modified = now;
    if (on_update_) on_update_(item);
  }

  bool erase(const std::string& key) { return items_.erase(key) > 0; }

  [[nodiscard]] std::optional<ViewItem> get(const std::string& key) const {
    auto it = items_.find(key);
    if (it == items_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// Observer for every shared-state change (wire to awareness).
  void on_update(std::function<void(const ViewItem&)> fn) {
    on_update_ = std::move(fn);
  }

  // --- view policies ------------------------------------------------------------

  /// Installs (or replaces) @p who's presentation policy — the runtime
  /// tailoring §3.2.2 asks for.
  void set_view(ccontrol::ClientId who, ViewSpec spec) {
    views_[who] = std::move(spec);
    if (on_view_changed_) on_view_changed_(who, views_[who].name);
  }

  /// What policy does @p who use?  Visible to everyone by design.
  [[nodiscard]] std::string describe_view(ccontrol::ClientId who) const {
    auto it = views_.find(who);
    return it == views_.end() ? std::string("full detail")
                              : it->second.name;
  }

  /// Observer for policy changes (who retailored, to what).
  void on_view_changed(
      std::function<void(ccontrol::ClientId, const std::string&)> fn) {
    on_view_changed_ = std::move(fn);
  }

  // --- rendering -------------------------------------------------------------------

  /// Renders the shared state the way @p who's spec presents it.
  [[nodiscard]] std::vector<std::string> render(
      ccontrol::ClientId who) const {
    ViewSpec defaults;
    const ViewSpec* spec = &defaults;
    if (auto it = views_.find(who); it != views_.end()) spec = &it->second;

    std::vector<const ViewItem*> selected;
    for (const auto& [key, item] : items_) {
      if (!spec->filter || spec->filter(item)) selected.push_back(&item);
    }
    switch (spec->order) {
      case ViewSpec::Order::kByKey:
        break;  // map order is key order already
      case ViewSpec::Order::kByRecency:
        std::stable_sort(selected.begin(), selected.end(),
                         [](const ViewItem* a, const ViewItem* b) {
                           return a->modified > b->modified;
                         });
        break;
      case ViewSpec::Order::kByAuthor:
        std::stable_sort(selected.begin(), selected.end(),
                         [](const ViewItem* a, const ViewItem* b) {
                           return a->author < b->author;
                         });
        break;
    }
    std::vector<std::string> out;
    out.reserve(selected.size());
    for (const ViewItem* item : selected) {
      out.push_back(spec->present ? spec->present(*item)
                                  : item->key + ": " + item->value);
    }
    return out;
  }

 private:
  std::map<std::string, ViewItem> items_;
  std::map<ccontrol::ClientId, ViewSpec> views_;
  std::function<void(const ViewItem&)> on_update_;
  std::function<void(ccontrol::ClientId, const std::string&)>
      on_view_changed_;
};

}  // namespace coop::groupware
