#include "groupware/flightstrips.hpp"

#include <algorithm>
#include <utility>

namespace coop::groupware {

void FlightProgressBoard::record(BoardEvent event) {
  audit_.push_back(event);
  if (on_event_) on_event_(audit_.back());
}

std::optional<FlightProgressBoard::Located> FlightProgressBoard::locate(
    const std::string& callsign) const {
  for (const auto& [beacon, strips] : racks_) {
    for (std::size_t i = 0; i < strips.size(); ++i) {
      if (strips[i].callsign == callsign) return Located{beacon, i};
    }
  }
  return std::nullopt;
}

bool FlightProgressBoard::add_strip(const std::string& beacon,
                                    FlightStrip strip,
                                    std::optional<std::size_t> position,
                                    ccontrol::ClientId controller,
                                    sim::TimePoint now) {
  if (locate(strip.callsign)) return false;  // already on the board
  auto& rack = racks_[beacon];
  std::size_t index = 0;
  if (placement_ == StripPlacement::kManual) {
    if (!position) return false;  // manual mode demands a deliberate slot
    index = std::min(*position, rack.size());
  } else {
    // Automatic: maintain eta order.
    index = static_cast<std::size_t>(
        std::lower_bound(rack.begin(), rack.end(), strip,
                         [](const FlightStrip& a, const FlightStrip& b) {
                           return a.eta < b.eta;
                         }) -
        rack.begin());
  }
  const std::string callsign = strip.callsign;
  rack.insert(rack.begin() + static_cast<long>(index), std::move(strip));
  record({BoardEvent::Kind::kAdd, beacon, callsign, controller, now});
  return true;
}

bool FlightProgressBoard::move_strip(const std::string& beacon,
                                     const std::string& callsign,
                                     std::size_t new_position,
                                     ccontrol::ClientId controller,
                                     sim::TimePoint now) {
  auto rit = racks_.find(beacon);
  if (rit == racks_.end()) return false;
  auto& rack = rit->second;
  auto it = std::find_if(rack.begin(), rack.end(),
                         [&](const FlightStrip& s) {
                           return s.callsign == callsign;
                         });
  if (it == rack.end()) return false;
  FlightStrip strip = std::move(*it);
  rack.erase(it);
  const std::size_t index = std::min(new_position, rack.size());
  rack.insert(rack.begin() + static_cast<long>(index), std::move(strip));
  record({BoardEvent::Kind::kMove, beacon, callsign, controller, now});
  return true;
}

bool FlightProgressBoard::amend(const std::string& callsign,
                                const std::string& instruction,
                                ccontrol::ClientId controller,
                                sim::TimePoint now) {
  const auto loc = locate(callsign);
  if (!loc) return false;
  FlightStrip& strip = racks_[loc->beacon][loc->index];
  if (!strip.instructions.empty()) strip.instructions += "; ";
  strip.instructions += instruction;
  record({BoardEvent::Kind::kAmend, loc->beacon, callsign, controller, now});
  return true;
}

bool FlightProgressBoard::set_cocked(const std::string& callsign,
                                     bool cocked,
                                     ccontrol::ClientId controller,
                                     sim::TimePoint now) {
  const auto loc = locate(callsign);
  if (!loc) return false;
  racks_[loc->beacon][loc->index].cocked = cocked;
  record({cocked ? BoardEvent::Kind::kCock : BoardEvent::Kind::kUncock,
          loc->beacon, callsign, controller, now});
  return true;
}

bool FlightProgressBoard::remove(const std::string& callsign,
                                 ccontrol::ClientId controller,
                                 sim::TimePoint now) {
  const auto loc = locate(callsign);
  if (!loc) return false;
  auto& rack = racks_[loc->beacon];
  rack.erase(rack.begin() + static_cast<long>(loc->index));
  record({BoardEvent::Kind::kRemove, loc->beacon, callsign, controller,
          now});
  return true;
}

std::vector<FlightStrip> FlightProgressBoard::rack(
    const std::string& beacon) const {
  auto it = racks_.find(beacon);
  return it == racks_.end() ? std::vector<FlightStrip>{} : it->second;
}

const FlightStrip* FlightProgressBoard::strip(
    const std::string& callsign) const {
  const auto loc = locate(callsign);
  if (!loc) return nullptr;
  return &racks_.at(loc->beacon)[loc->index];
}

std::size_t FlightProgressBoard::anticipated_load(const std::string& beacon,
                                                  sim::TimePoint from,
                                                  sim::TimePoint to) const {
  auto it = racks_.find(beacon);
  if (it == racks_.end()) return 0;
  std::size_t n = 0;
  for (const FlightStrip& s : it->second) {
    if (s.eta >= from && s.eta < to) ++n;
  }
  return n;
}

std::vector<std::string> FlightProgressBoard::cocked_strips() const {
  std::vector<std::string> out;
  for (const auto& [beacon, strips] : racks_) {
    for (const FlightStrip& s : strips) {
      if (s.cocked) out.push_back(s.callsign);
    }
  }
  return out;
}

}  // namespace coop::groupware
