// Floor control — reservation-style concurrency control for conferencing
// (§4.2.1): "Conferencing systems often use a floor passing approach to
// reservation.  Other systems, such as Colab, use an approach based on
// more informal negotiation."
//
// Four policies over one controller so experiments can compare them:
//
//   kExplicitRelease — the classic baton: requests queue FIFO; the floor
//                      moves only when the holder releases it.
//   kPreemptive      — a request takes the floor immediately (turn-taking
//                      by social convention, the MMConf default).
//   kRoundRobin      — the floor rotates on a timer among everyone whose
//                      request is outstanding.
//   kNegotiation     — Colab-style: a request asks the current holder; the
//                      holder may grant or refuse, and silence for the
//                      negotiation timeout counts as consent.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ccontrol/locks.hpp"  // ClientId
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::ccontrol {

enum class FloorPolicy : std::uint8_t {
  kExplicitRelease,
  kPreemptive,
  kRoundRobin,
  kNegotiation,
};

struct FloorConfig {
  FloorPolicy policy = FloorPolicy::kExplicitRelease;
  /// kRoundRobin: how long each speaker keeps the floor.
  sim::Duration rotation_period = sim::sec(5);
  /// kNegotiation: silence from the holder for this long = consent.
  sim::Duration negotiation_timeout = sim::sec(3);
};

struct FloorStats {
  std::uint64_t grants = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t refusals = 0;
  std::uint64_t auto_grants = 0;  ///< negotiation timeouts (implicit consent)
  util::Summary wait_time;        ///< request -> grant, virtual µs
};

/// The session's floor arbiter.
class FloorControl {
 public:
  using GrantFn = std::function<void(bool granted)>;

  FloorControl(sim::Simulator& sim, FloorConfig config = {});
  ~FloorControl();

  FloorControl(const FloorControl&) = delete;
  FloorControl& operator=(const FloorControl&) = delete;

  /// Asks for the floor.  @p done fires once: true when the floor is
  /// granted, false if the holder refused (kNegotiation only).
  void request(ClientId who, GrantFn done);

  /// Gives the floor up; the next queued requester (if any) gets it.
  void release(ClientId who);

  /// kNegotiation: the holder answers an outstanding request.
  void respond(ClientId holder, bool grant);

  /// Tailors the floor policy mid-session (§3.2.2: the sharing policy of
  /// a conference should be visible and changeable, not baked in).
  /// Queued requests keep waiting under the new regime; switching TO
  /// round-robin arms the rotation, switching away disarms it.
  void set_policy(FloorPolicy policy);

  [[nodiscard]] FloorPolicy policy() const noexcept {
    return config_.policy;
  }

  /// Fired when the floor changes hands: (previous holder or nullopt,
  /// new holder or nullopt).
  void on_floor_change(
      std::function<void(std::optional<ClientId>, std::optional<ClientId>)>
          fn) {
    on_change_ = std::move(fn);
  }

  /// kNegotiation: fired at the holder when someone asks for the floor.
  void on_negotiate(std::function<void(ClientId holder, ClientId asker)> fn) {
    on_negotiate_ = std::move(fn);
  }

  [[nodiscard]] std::optional<ClientId> holder() const noexcept {
    return holder_;
  }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] const FloorStats& stats() const noexcept { return stats_; }

 private:
  struct Pending {
    ClientId who;
    GrantFn done;
    sim::TimePoint since;
    sim::EventId negotiation_timer = sim::kInvalidEvent;
  };

  void give_floor(ClientId who, GrantFn done, sim::TimePoint since);
  void next_from_queue();
  void arm_rotation();

  sim::Simulator& sim_;
  FloorConfig config_;
  std::optional<ClientId> holder_;
  std::deque<Pending> queue_;
  std::function<void(std::optional<ClientId>, std::optional<ClientId>)>
      on_change_;
  std::function<void(ClientId, ClientId)> on_negotiate_;
  sim::EventId rotation_timer_ = sim::kInvalidEvent;
  FloorStats stats_;
};

}  // namespace coop::ccontrol
