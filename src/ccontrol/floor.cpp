#include "ccontrol/floor.hpp"

#include <algorithm>
#include <utility>

namespace coop::ccontrol {

FloorControl::FloorControl(sim::Simulator& sim, FloorConfig config)
    : sim_(sim), config_(config) {}

FloorControl::~FloorControl() {
  if (rotation_timer_ != sim::kInvalidEvent) sim_.cancel(rotation_timer_);
  for (Pending& p : queue_) {
    if (p.negotiation_timer != sim::kInvalidEvent)
      sim_.cancel(p.negotiation_timer);
  }
}

void FloorControl::give_floor(ClientId who, GrantFn done,
                              sim::TimePoint since) {
  const std::optional<ClientId> prev = holder_;
  holder_ = who;
  ++stats_.grants;
  stats_.wait_time.add(static_cast<double>(sim_.now() - since));
  if (on_change_) on_change_(prev, holder_);
  if (config_.policy == FloorPolicy::kRoundRobin) arm_rotation();
  if (done) done(true);
}

void FloorControl::arm_rotation() {
  if (rotation_timer_ != sim::kInvalidEvent) sim_.cancel(rotation_timer_);
  rotation_timer_ = sim_.schedule_after(config_.rotation_period, [this] {
    rotation_timer_ = sim::kInvalidEvent;
    if (!queue_.empty()) {
      // Rotate: current holder loses the floor, front of queue gets it.
      next_from_queue();
    } else if (holder_) {
      arm_rotation();  // nobody waiting; holder keeps the floor
    }
  });
}

void FloorControl::next_from_queue() {
  if (queue_.empty()) {
    const std::optional<ClientId> prev = holder_;
    holder_.reset();
    if (on_change_ && prev) on_change_(prev, std::nullopt);
    return;
  }
  Pending p = std::move(queue_.front());
  queue_.pop_front();
  if (p.negotiation_timer != sim::kInvalidEvent)
    sim_.cancel(p.negotiation_timer);
  give_floor(p.who, std::move(p.done), p.since);
}

void FloorControl::set_policy(FloorPolicy policy) {
  if (config_.policy == policy) return;
  config_.policy = policy;
  if (policy == FloorPolicy::kRoundRobin) {
    if (holder_ && rotation_timer_ == sim::kInvalidEvent) arm_rotation();
  } else if (rotation_timer_ != sim::kInvalidEvent) {
    sim_.cancel(rotation_timer_);
    rotation_timer_ = sim::kInvalidEvent;
  }
  // Leaving kNegotiation: pending knocks become plain queue entries; their
  // negotiation timers are disarmed (silence no longer implies consent).
  if (policy != FloorPolicy::kNegotiation) {
    for (Pending& p : queue_) {
      if (p.negotiation_timer != sim::kInvalidEvent) {
        sim_.cancel(p.negotiation_timer);
        p.negotiation_timer = sim::kInvalidEvent;
      }
    }
  }
}

void FloorControl::request(ClientId who, GrantFn done) {
  if (holder_ == who) {
    if (done) done(true);  // already holding
    return;
  }
  // Idempotent while queued: a re-sent request (impatient user, lost
  // notification) must not create a second queue entry — the stale grant
  // would later hand the floor to someone no longer asking.
  for (const Pending& p : queue_) {
    if (p.who == who) return;
  }
  if (!holder_) {
    give_floor(who, std::move(done), sim_.now());
    return;
  }

  switch (config_.policy) {
    case FloorPolicy::kPreemptive:
      ++stats_.preemptions;
      give_floor(who, std::move(done), sim_.now());
      return;

    case FloorPolicy::kExplicitRelease:
    case FloorPolicy::kRoundRobin:
      queue_.push_back({who, std::move(done), sim_.now()});
      if (config_.policy == FloorPolicy::kRoundRobin &&
          rotation_timer_ == sim::kInvalidEvent) {
        arm_rotation();
      }
      return;

    case FloorPolicy::kNegotiation: {
      Pending p{who, std::move(done), sim_.now()};
      if (on_negotiate_) on_negotiate_(*holder_, who);
      // Silence is consent: auto-grant after the timeout.
      p.negotiation_timer =
          sim_.schedule_after(config_.negotiation_timeout, [this, who] {
            auto it = std::find_if(queue_.begin(), queue_.end(),
                                   [&](const Pending& q) {
                                     return q.who == who;
                                   });
            if (it == queue_.end()) return;
            ++stats_.auto_grants;
            Pending granted = std::move(*it);
            queue_.erase(it);
            give_floor(granted.who, std::move(granted.done), granted.since);
          });
      queue_.push_back(std::move(p));
      return;
    }
  }
}

void FloorControl::respond(ClientId holder, bool grant) {
  if (config_.policy != FloorPolicy::kNegotiation) return;
  if (!holder_ || *holder_ != holder || queue_.empty()) return;
  Pending p = std::move(queue_.front());
  queue_.pop_front();
  if (p.negotiation_timer != sim::kInvalidEvent)
    sim_.cancel(p.negotiation_timer);
  if (grant) {
    give_floor(p.who, std::move(p.done), p.since);
  } else {
    ++stats_.refusals;
    if (p.done) p.done(false);
  }
}

void FloorControl::release(ClientId who) {
  if (!holder_ || *holder_ != who) {
    // Not the holder: retract any queued request instead.
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [&](const Pending& q) { return q.who == who; });
    if (it != queue_.end()) {
      if (it->negotiation_timer != sim::kInvalidEvent)
        sim_.cancel(it->negotiation_timer);
      queue_.erase(it);
    }
    return;
  }
  next_from_queue();
}

}  // namespace coop::ccontrol
