#include "ccontrol/txgroup.hpp"

#include <utility>

namespace coop::ccontrol {

OpContext TransactionGroup::make_context(ClientId member,
                                         const std::string& key,
                                         bool is_write) const {
  OpContext ctx;
  ctx.member = member;
  ctx.is_write = is_write;
  ctx.key = key;
  auto it = activity_.find(key);
  if (it != activity_.end()) {
    for (ClientId w : it->second.writers)
      if (w != member) ctx.active_writers.push_back(w);
    for (ClientId r : it->second.readers)
      if (r != member) ctx.active_readers.push_back(r);
  }
  return ctx;
}

RuleDecision TransactionGroup::judge(const OpContext& ctx) {
  const RuleDecision d = rule_ ? rule_(ctx) : RuleDecision::kAllow;
  if (d == RuleDecision::kAllowNotify && notify_) {
    // Everyone we overlap with hears about the operation.
    for (ClientId w : ctx.active_writers) {
      ++stats_.notifications;
      notify_(w, ctx);
    }
    if (ctx.is_write) {
      for (ClientId r : ctx.active_readers) {
        ++stats_.notifications;
        notify_(r, ctx);
      }
    }
  }
  return d;
}

std::optional<std::string> TransactionGroup::read(ClientId member,
                                                  const std::string& key) {
  if (!is_member(member)) return std::nullopt;
  const OpContext ctx = make_context(member, key, /*is_write=*/false);
  if (judge(ctx) == RuleDecision::kDeny) {
    ++stats_.denied;
    return std::nullopt;
  }
  ++stats_.reads;
  return store_.read(key);
}

bool TransactionGroup::write(ClientId member, const std::string& key,
                             std::string value) {
  if (!is_member(member)) return false;
  const OpContext ctx = make_context(member, key, /*is_write=*/true);
  if (judge(ctx) == RuleDecision::kDeny) {
    ++stats_.denied;
    return false;
  }
  ++stats_.writes;
  store_.write(key, std::move(value));
  return true;
}

AccessRule TransactionGroup::serial_rule() {
  return [](const OpContext& ctx) {
    if (!ctx.active_writers.empty()) return RuleDecision::kDeny;
    if (ctx.is_write && !ctx.active_readers.empty())
      return RuleDecision::kDeny;
    return RuleDecision::kAllow;
  };
}

AccessRule TransactionGroup::cooperative_rule() {
  return [](const OpContext& ctx) {
    const bool overlap =
        !ctx.active_writers.empty() ||
        (ctx.is_write && !ctx.active_readers.empty());
    return overlap ? RuleDecision::kAllowNotify : RuleDecision::kAllow;
  };
}

AccessRule TransactionGroup::owner_rule(
    std::map<std::string, ClientId> owners) {
  return [owners = std::move(owners)](const OpContext& ctx) {
    auto it = owners.find(ctx.key);
    if (ctx.is_write) {
      if (it != owners.end() && it->second != ctx.member)
        return RuleDecision::kDeny;
      return RuleDecision::kAllow;
    }
    // Reads by non-owners are fine but the owner hears about them.
    if (it != owners.end() && it->second != ctx.member)
      return RuleDecision::kAllowNotify;
    return RuleDecision::kAllow;
  };
}

}  // namespace coop::ccontrol
