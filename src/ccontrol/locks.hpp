// Cooperative locking: the classic scheme and the three CSCW alternatives
// the paper surveys in §4.2.1 — tickle locks (Greif & Sarin), soft locks
// (Colab/Cognoter) and notification locks (Hornick & Zdonik).
//
// All four styles share one LockManager so experiments can swap the policy
// while holding the workload fixed:
//
//   kStrict  — shared/exclusive compatibility, FIFO waiting.  This is the
//              transaction-style "wall" of Figure 2a: conflicting users
//              simply block, unaware of each other.
//   kTickle  — like kStrict, but a conflicting request "tickles" the
//              holder; if the holder has been idle longer than the idle
//              timeout the lock transfers immediately (the holder is
//              revoked).  Active holders keep the lock; the requester
//              waits as usual.  Note the deliberate unfairness: a
//              newcomer whose tickle dispossesses an idle holder takes
//              the lock ahead of queued waiters, so tickle optimizes
//              the requester's experience against absentee holders, not
//              aggregate waiting time (measured in the E1 bench and the
//              lock-style sweep tests).
//   kSoft    — advisory: every acquisition succeeds.  On conflict, both
//              parties are told who they collide with — the social
//              protocol (Figure 2b) resolves the overlap.
//   kNotify  — writers exclude only writers; readers always proceed and
//              may register interest to receive change notifications
//              instead of being locked out ("read over the shoulder").
//
// The manager is a session-local object; distributed use goes through an
// RPC wrapper (see bench/ and examples/).  Waits are virtual-time and
// recorded so experiments can report blocking-time distributions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::ccontrol {

/// Identifies a lock requester (user/session/transaction).
using ClientId = std::uint32_t;

enum class LockMode : std::uint8_t { kShared, kExclusive };

enum class LockStyle : std::uint8_t { kStrict, kTickle, kSoft, kNotify };

/// Result handed to the acquire callback.
struct LockGrant {
  bool granted = false;
  sim::Duration waited = 0;         ///< virtual time spent blocked
  std::vector<ClientId> conflicts;  ///< kSoft: who we overlap with
};

/// Observer hooks for the cooperative styles.
struct LockObservers {
  /// kSoft: fired at the *existing* holders when a conflicting
  /// acquisition succeeds anyway.
  std::function<void(const std::string& resource, ClientId holder,
                     ClientId intruder)>
      on_conflict;
  /// kTickle: fired at an *active* holder when someone wants the lock.
  std::function<void(const std::string& resource, ClientId holder,
                     ClientId requester)>
      on_tickle;
  /// kTickle: fired when an idle holder's lock is transferred away.
  std::function<void(const std::string& resource, ClientId old_holder)>
      on_revoked;
  /// kNotify: fired at registered readers when a writer publishes a
  /// change (notify_change).
  std::function<void(const std::string& resource, ClientId reader,
                     ClientId writer)>
      on_change;
};

struct LockConfig {
  LockStyle style = LockStyle::kStrict;
  /// kTickle: holder idle for at least this long loses the lock to a
  /// tickling requester.
  sim::Duration tickle_idle_timeout = sim::sec(30);
  /// Waiting longer than this fails the acquire (deadlock escape hatch);
  /// 0 means wait forever.
  sim::Duration wait_timeout = 0;
};

/// Aggregate counters for experiments.
struct LockStats {
  std::uint64_t grants = 0;
  std::uint64_t waits = 0;           ///< requests that had to queue
  std::uint64_t conflicts = 0;       ///< kSoft overlapping acquisitions
  std::uint64_t tickles = 0;         ///< kTickle holder notifications
  std::uint64_t transfers = 0;       ///< kTickle idle-holder revocations
  std::uint64_t notifications = 0;   ///< kNotify change fan-outs
  std::uint64_t timeouts = 0;        ///< waits abandoned
  util::Summary wait_time;           ///< virtual µs blocked per request
};

/// One lock table covering any number of named resources.
class LockManager {
 public:
  using AcquireFn = std::function<void(const LockGrant&)>;

  /// Records into @p obs if given, else the ambient default, else a
  /// private Obs (so standalone managers in unit tests need no setup).
  explicit LockManager(sim::Simulator& sim, LockConfig config = {},
                       obs::Obs* obs = nullptr);
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests @p resource in @p mode.  @p done fires exactly once — maybe
  /// synchronously (uncontended), maybe after a virtual-time wait.
  void acquire(const std::string& resource, ClientId client, LockMode mode,
               AcquireFn done);

  /// Releases @p client's hold; queued waiters are promoted.
  void release(const std::string& resource, ClientId client);

  /// Marks holder activity (kTickle idleness clock).
  void touch(const std::string& resource, ClientId client);

  /// kNotify: registers @p reader for change notifications on @p resource.
  void register_interest(const std::string& resource, ClientId reader);

  /// kNotify: removes the registration.
  void unregister_interest(const std::string& resource, ClientId reader);

  /// kNotify: a writer announces a change; registered readers (except the
  /// writer) receive on_change.
  void notify_change(const std::string& resource, ClientId writer);

  /// True if @p client currently holds @p resource in any mode.
  [[nodiscard]] bool holds(const std::string& resource,
                           ClientId client) const;

  /// Current holders of @p resource.
  [[nodiscard]] std::vector<ClientId> holders(
      const std::string& resource) const;

  void set_observers(LockObservers obs) { observers_ = std::move(obs); }

  [[nodiscard]] const LockStats& stats() const noexcept { return stats_; }
  [[nodiscard]] LockStyle style() const noexcept { return config_.style; }

 private:
  struct Holder {
    ClientId client;
    LockMode mode;
    sim::TimePoint last_activity;
  };
  struct Waiter {
    ClientId client;
    LockMode mode;
    AcquireFn done;
    sim::TimePoint since;
    sim::EventId timeout_timer = sim::kInvalidEvent;
  };
  struct Entry {
    std::vector<Holder> holders;
    std::deque<Waiter> waiters;
    std::set<ClientId> interested;  // kNotify registrations
    /// kTickle: pending idle-holder re-check on behalf of the waiters.
    sim::EventId tickle_timer = sim::kInvalidEvent;
  };

  /// True if @p mode by @p client is compatible with current holders
  /// under the configured style.
  [[nodiscard]] bool compatible(const Entry& e, ClientId client,
                                LockMode mode) const;
  void grant(Entry& e, const std::string& resource, ClientId client,
             LockMode mode, AcquireFn done, sim::Duration waited);
  void promote_waiters(const std::string& resource);
  /// kTickle: schedules a re-check at the earliest moment a current
  /// holder could be deemed idle, so queued waiters (not only brand-new
  /// requesters) benefit from idle-holder revocation.
  void arm_tickle_recheck(const std::string& resource);

  sim::Simulator& sim_;
  LockConfig config_;
  std::map<std::string, Entry> table_;
  LockObservers observers_;
  // Hot storage (tests read it directly); the registry polls it through
  // views under metric_prefix_, retired/frozen in the destructor.
  LockStats stats_;
  std::unique_ptr<obs::Obs> owned_obs_;  // only when no context was supplied
  obs::Obs* obs_;
  std::string metric_prefix_;
};

}  // namespace coop::ccontrol
