// Classic atomic transactions over the shared store: strict two-phase
// locking, wait-die deadlock avoidance, serializable by construction.
//
// This engine is the baseline the paper argues *against* for CSCW (§4.2.1
// and Figure 2a): concurrency transparency achieved by prescribing
// serializability, with conflicting users simply blocked behind "walls" —
// no awareness, response time proportional to contention.  The benchmark
// harness races it against the cooperative alternatives (tickle/soft/
// notification locks, transaction groups, operational transformation).
//
// Wait-die: an older transaction may wait for a younger one; a younger
// transaction requesting a lock held by an older one aborts immediately
// ("dies") and is expected to retry with its original timestamp (callers
// in the benches retry with a fresh transaction, which suffices for the
// workloads measured).  Wait-die guarantees freedom from deadlock, so no
// cycle detector is needed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ccontrol/store.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace coop::ccontrol {

using TxnId = std::uint64_t;

enum class TxnState : std::uint8_t { kActive, kCommitted, kAborted };

/// Why an operation or transaction failed.
enum class TxnError : std::uint8_t {
  kNone = 0,
  kWaitDie,      ///< younger txn died on an older holder's lock
  kNotActive,    ///< operation on a committed/aborted transaction
};

struct TxnStats {
  std::uint64_t begun = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t wait_die_aborts = 0;
  util::Summary block_time;   ///< virtual µs blocked per lock wait
  util::Summary txn_latency;  ///< begin -> commit, committed txns only
};

/// The operation log of a committed transaction, in program order — used
/// by the serializability property tests to replay history sequentially.
struct CommitRecord {
  struct Op {
    bool is_write = false;
    std::string key;
    /// Value written, or value observed by the read (nullopt = absent).
    std::optional<std::string> value;
  };
  TxnId id = 0;
  std::vector<Op> ops;
};

/// The transaction engine.  All operations are asynchronous because lock
/// waits consume virtual time.
class TransactionManager {
 public:
  TransactionManager(sim::Simulator& sim, ObjectStore& store)
      : sim_(sim), store_(store) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Starts a transaction; the id doubles as its wait-die timestamp
  /// (smaller = older).
  TxnId begin();

  using ReadFn = std::function<void(bool ok, std::optional<std::string>)>;
  using WriteFn = std::function<void(bool ok)>;

  /// Reads @p key under a shared lock.  ok=false means the transaction
  /// died (wait-die) and has been aborted.
  void read(TxnId txn, const std::string& key, ReadFn done);

  /// Buffers a write under an exclusive lock; visible to others only
  /// after commit.
  void write(TxnId txn, const std::string& key, std::string value,
             WriteFn done);

  /// Applies buffered writes and releases locks.  Returns false if the
  /// transaction was not active.
  bool commit(TxnId txn);

  /// Discards buffered writes and releases locks.
  void abort(TxnId txn);

  [[nodiscard]] TxnState state(TxnId txn) const;
  [[nodiscard]] const TxnStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<CommitRecord>& commit_log() const noexcept {
    return log_;
  }

 private:
  enum class Mode : std::uint8_t { kShared, kExclusive };

  struct Waiter {
    TxnId txn;
    Mode mode;
    std::function<void(bool)> granted;  // false = died while waiting
    sim::TimePoint since;
  };
  struct LockEntry {
    std::map<TxnId, Mode> holders;
    std::deque<Waiter> waiters;
  };
  struct Txn {
    TxnState state = TxnState::kActive;
    sim::TimePoint began = 0;
    std::set<std::string> locks;
    std::map<std::string, std::string> write_buffer;
    CommitRecord record;
  };

  /// Acquires @p key for @p txn; @p done(false) on wait-die abort.
  void lock(TxnId txn, const std::string& key, Mode mode,
            std::function<void(bool)> done);
  [[nodiscard]] bool lock_compatible(const LockEntry& e, TxnId txn,
                                     Mode mode) const;
  void promote(const std::string& key);
  void release_all(TxnId txn);
  void kill(TxnId txn);  ///< wait-die abort

  sim::Simulator& sim_;
  ObjectStore& store_;
  std::map<TxnId, Txn> txns_;
  std::map<std::string, LockEntry> locks_;
  TxnId next_id_ = 1;
  TxnStats stats_;
  std::vector<CommitRecord> log_;
};

}  // namespace coop::ccontrol
