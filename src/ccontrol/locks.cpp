#include "ccontrol/locks.hpp"

#include <algorithm>
#include <utility>

namespace coop::ccontrol {

namespace {

// Distinguishes multiple managers sharing one registry (e.g. one per
// experiment node).  Construction order is deterministic under the
// simulator, so ids are stable across runs.
std::uint64_t next_manager_id() {
  static std::uint64_t id = 0;
  return id++;
}

}  // namespace

LockManager::LockManager(sim::Simulator& sim, LockConfig config,
                         obs::Obs* obs)
    : sim_(sim), config_(config) {
  if (obs == nullptr) obs = obs::default_obs();
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Obs>();
    obs = owned_obs_.get();
  }
  obs_ = obs;
  metric_prefix_ = "ccontrol.locks." + std::to_string(next_manager_id()) + ".";
  auto& m = obs_->metrics;
  m.expose(metric_prefix_ + "grants",
           [this] { return static_cast<double>(stats_.grants); });
  m.expose(metric_prefix_ + "waits",
           [this] { return static_cast<double>(stats_.waits); });
  m.expose(metric_prefix_ + "conflicts",
           [this] { return static_cast<double>(stats_.conflicts); });
  m.expose(metric_prefix_ + "tickles",
           [this] { return static_cast<double>(stats_.tickles); });
  m.expose(metric_prefix_ + "transfers",
           [this] { return static_cast<double>(stats_.transfers); });
  m.expose(metric_prefix_ + "notifications",
           [this] { return static_cast<double>(stats_.notifications); });
  m.expose(metric_prefix_ + "timeouts",
           [this] { return static_cast<double>(stats_.timeouts); });
  m.expose(metric_prefix_ + "wait_time_mean_us",
           [this] { return stats_.wait_time.mean(); });
}

LockManager::~LockManager() { obs_->metrics.retire_polled(metric_prefix_); }

bool LockManager::compatible(const Entry& e, ClientId client,
                             LockMode mode) const {
  if (config_.style == LockStyle::kSoft) return true;  // advisory only
  for (const Holder& h : e.holders) {
    if (h.client == client) continue;  // re-entrant with self
    if (config_.style == LockStyle::kNotify) {
      // Readers never conflict; writers exclude only other writers.
      if (mode == LockMode::kShared || h.mode == LockMode::kShared) continue;
      return false;
    }
    if (mode == LockMode::kExclusive || h.mode == LockMode::kExclusive)
      return false;
  }
  return true;
}

void LockManager::grant(Entry& e, const std::string& resource,
                        ClientId client, LockMode mode, AcquireFn done,
                        sim::Duration waited) {
  ++stats_.grants;
  stats_.wait_time.add(static_cast<double>(waited));
  // Span covering the blocked interval (zero-length when uncontended).
  obs_->tracer.span(sim_.now() - waited, sim_.now(), obs::Category::kLock,
                    "grant", {{"client", static_cast<double>(client)},
                              {"waited_us", static_cast<double>(waited)}});

  LockGrant result;
  result.granted = true;
  result.waited = waited;

  if (config_.style == LockStyle::kSoft) {
    // Report the overlap to both sides: the grant lists existing
    // conflicting holders; each of those holders gets on_conflict.
    for (const Holder& h : e.holders) {
      if (h.client == client) continue;
      const bool overlap =
          mode == LockMode::kExclusive || h.mode == LockMode::kExclusive;
      if (!overlap) continue;
      ++stats_.conflicts;
      result.conflicts.push_back(h.client);
      if (observers_.on_conflict)
        observers_.on_conflict(resource, h.client, client);
    }
  }

  // Re-acquisition by an existing holder upgrades/refreshes in place.
  auto it = std::find_if(e.holders.begin(), e.holders.end(),
                         [&](const Holder& h) { return h.client == client; });
  if (it != e.holders.end()) {
    if (mode == LockMode::kExclusive) it->mode = LockMode::kExclusive;
    it->last_activity = sim_.now();
  } else {
    e.holders.push_back({client, mode, sim_.now()});
  }
  if (done) done(result);
}

void LockManager::acquire(const std::string& resource, ClientId client,
                          LockMode mode, AcquireFn done) {
  obs_->tracer.event(sim_.now(), obs::Category::kLock, "acquire",
                     {{"client", static_cast<double>(client)},
                      {"exclusive", mode == LockMode::kExclusive ? 1.0 : 0.0}});
  Entry& e = table_[resource];
  const bool already_holding =
      std::any_of(e.holders.begin(), e.holders.end(),
                  [&](const Holder& h) { return h.client == client; });
  // A newcomer may not overtake queued waiters even if it is compatible
  // with the current holders (classic reader-starves-writer hazard);
  // existing holders may still re-acquire/upgrade.
  const bool must_queue = !e.waiters.empty() && !already_holding;
  if (!must_queue && compatible(e, client, mode)) {
    grant(e, resource, client, mode, std::move(done), 0);
    return;
  }

  // kTickle: poke the blocking holders; idle ones are dispossessed.
  if (config_.style == LockStyle::kTickle) {
    const sim::TimePoint now = sim_.now();
    bool transferred = false;
    for (auto hit = e.holders.begin(); hit != e.holders.end();) {
      const bool blocks = hit->client != client &&
                          (mode == LockMode::kExclusive ||
                           hit->mode == LockMode::kExclusive);
      if (!blocks) {
        ++hit;
        continue;
      }
      if (now - hit->last_activity >= config_.tickle_idle_timeout) {
        ++stats_.transfers;
        const ClientId old = hit->client;
        obs_->tracer.event(now, obs::Category::kLock, "transfer",
                           {{"from", static_cast<double>(old)},
                            {"to", static_cast<double>(client)}});
        hit = e.holders.erase(hit);
        if (observers_.on_revoked) observers_.on_revoked(resource, old);
        transferred = true;
      } else {
        ++stats_.tickles;
        obs_->tracer.event(now, obs::Category::kLock, "tickle",
                           {{"holder", static_cast<double>(hit->client)},
                            {"requester", static_cast<double>(client)}});
        if (observers_.on_tickle)
          observers_.on_tickle(resource, hit->client, client);
        ++hit;
      }
    }
    if (transferred && compatible(e, client, mode)) {
      grant(e, resource, client, mode, std::move(done), 0);
      return;
    }
  }

  // Queue the request.
  ++stats_.waits;
  obs_->tracer.event(sim_.now(), obs::Category::kLock, "block",
                     {{"client", static_cast<double>(client)}});
  Waiter w;
  w.client = client;
  w.mode = mode;
  w.done = std::move(done);
  w.since = sim_.now();
  if (config_.wait_timeout > 0) {
    w.timeout_timer = sim_.schedule_after(
        config_.wait_timeout, [this, resource, client] {
          Entry& entry = table_[resource];
          auto wit = std::find_if(
              entry.waiters.begin(), entry.waiters.end(),
              [&](const Waiter& x) { return x.client == client; });
          if (wit == entry.waiters.end()) return;
          ++stats_.timeouts;
          obs_->tracer.event(sim_.now(), obs::Category::kLock, "timeout",
                             {{"client", static_cast<double>(client)}});
          AcquireFn done = std::move(wit->done);
          const sim::Duration waited = sim_.now() - wit->since;
          entry.waiters.erase(wit);
          if (done) done({.granted = false, .waited = waited, .conflicts = {}});
        });
  }
  table_[resource].waiters.push_back(std::move(w));
  arm_tickle_recheck(resource);
}

void LockManager::arm_tickle_recheck(const std::string& resource) {
  if (config_.style != LockStyle::kTickle) return;
  Entry& e = table_[resource];
  if (e.tickle_timer != sim::kInvalidEvent || e.waiters.empty() ||
      e.holders.empty()) {
    return;
  }
  // Earliest instant any current holder crosses the idle threshold.
  sim::TimePoint next = e.holders.front().last_activity;
  for (const Holder& h : e.holders)
    next = std::min(next, h.last_activity);
  next += config_.tickle_idle_timeout;
  const sim::Duration delay = std::max<sim::Duration>(next - sim_.now(), 0);
  e.tickle_timer = sim_.schedule_after(delay + 1, [this, resource] {
    Entry& entry = table_[resource];
    entry.tickle_timer = sim::kInvalidEvent;
    if (entry.waiters.empty()) return;
    const sim::TimePoint now = sim_.now();
    const Waiter& front = entry.waiters.front();
    for (auto hit = entry.holders.begin(); hit != entry.holders.end();) {
      const bool blocks = hit->client != front.client &&
                          (front.mode == LockMode::kExclusive ||
                           hit->mode == LockMode::kExclusive);
      if (blocks &&
          now - hit->last_activity >= config_.tickle_idle_timeout) {
        ++stats_.transfers;
        const ClientId old = hit->client;
        obs_->tracer.event(now, obs::Category::kLock, "transfer",
                           {{"from", static_cast<double>(old)},
                            {"to", static_cast<double>(front.client)}});
        hit = entry.holders.erase(hit);
        if (observers_.on_revoked) observers_.on_revoked(resource, old);
      } else {
        ++hit;
      }
    }
    promote_waiters(resource);
    arm_tickle_recheck(resource);  // still-active holders: check again
  });
}

void LockManager::release(const std::string& resource, ClientId client) {
  auto tit = table_.find(resource);
  if (tit == table_.end()) return;
  obs_->tracer.event(sim_.now(), obs::Category::kLock, "release",
                     {{"client", static_cast<double>(client)}});
  Entry& e = tit->second;
  e.holders.erase(
      std::remove_if(e.holders.begin(), e.holders.end(),
                     [&](const Holder& h) { return h.client == client; }),
      e.holders.end());
  promote_waiters(resource);
}

void LockManager::promote_waiters(const std::string& resource) {
  auto tit = table_.find(resource);
  if (tit == table_.end()) return;
  Entry& e = tit->second;
  // FIFO promotion: grant from the front while compatible.  Stopping at
  // the first incompatible waiter prevents writer starvation.
  while (!e.waiters.empty()) {
    Waiter& front = e.waiters.front();
    if (!compatible(e, front.client, front.mode)) break;
    Waiter w = std::move(front);
    e.waiters.pop_front();
    if (w.timeout_timer != sim::kInvalidEvent) sim_.cancel(w.timeout_timer);
    grant(e, resource, w.client, w.mode, std::move(w.done),
          sim_.now() - w.since);
  }
}

void LockManager::touch(const std::string& resource, ClientId client) {
  auto tit = table_.find(resource);
  if (tit == table_.end()) return;
  for (Holder& h : tit->second.holders) {
    if (h.client == client) h.last_activity = sim_.now();
  }
}

void LockManager::register_interest(const std::string& resource,
                                    ClientId reader) {
  table_[resource].interested.insert(reader);
}

void LockManager::unregister_interest(const std::string& resource,
                                      ClientId reader) {
  auto tit = table_.find(resource);
  if (tit != table_.end()) tit->second.interested.erase(reader);
}

void LockManager::notify_change(const std::string& resource,
                                ClientId writer) {
  auto tit = table_.find(resource);
  if (tit == table_.end()) return;
  for (ClientId reader : tit->second.interested) {
    if (reader == writer) continue;
    ++stats_.notifications;
    if (observers_.on_change) observers_.on_change(resource, reader, writer);
  }
}

bool LockManager::holds(const std::string& resource, ClientId client) const {
  auto tit = table_.find(resource);
  if (tit == table_.end()) return false;
  return std::any_of(tit->second.holders.begin(), tit->second.holders.end(),
                     [&](const Holder& h) { return h.client == client; });
}

std::vector<ClientId> LockManager::holders(const std::string& resource) const {
  std::vector<ClientId> out;
  auto tit = table_.find(resource);
  if (tit == table_.end()) return out;
  for (const Holder& h : tit->second.holders) out.push_back(h.client);
  return out;
}

}  // namespace coop::ccontrol
