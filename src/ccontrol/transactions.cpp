#include "ccontrol/transactions.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace coop::ccontrol {

TxnId TransactionManager::begin() {
  const TxnId id = next_id_++;
  Txn t;
  t.began = sim_.now();
  t.record.id = id;
  txns_[id] = std::move(t);
  ++stats_.begun;
  return id;
}

TxnState TransactionManager::state(TxnId txn) const {
  auto it = txns_.find(txn);
  return it == txns_.end() ? TxnState::kAborted : it->second.state;
}

bool TransactionManager::lock_compatible(const LockEntry& e, TxnId txn,
                                         Mode mode) const {
  for (const auto& [holder, held_mode] : e.holders) {
    if (holder == txn) {
      // Re-entrant; an upgrade to exclusive additionally requires that we
      // are the only holder, checked against the other entries below.
      continue;
    }
    if (mode == Mode::kExclusive || held_mode == Mode::kExclusive)
      return false;
  }
  return true;
}

void TransactionManager::lock(TxnId txn, const std::string& key, Mode mode,
                              std::function<void(bool)> done) {
  auto tit = txns_.find(txn);
  if (tit == txns_.end() || tit->second.state != TxnState::kActive) {
    done(false);
    return;
  }
  LockEntry& e = locks_[key];

  // Already held in a sufficient mode?
  if (auto hit = e.holders.find(txn); hit != e.holders.end()) {
    if (hit->second == Mode::kExclusive || mode == Mode::kShared) {
      done(true);
      return;
    }
  }

  if (lock_compatible(e, txn, mode)) {
    Mode& held = e.holders[txn];  // default-inserts kShared
    if (mode == Mode::kExclusive) held = Mode::kExclusive;
    tit->second.locks.insert(key);
    stats_.block_time.add(0.0);
    done(true);
    return;
  }

  // Wait-die: wait only if we are older than every conflicting holder.
  for (const auto& [holder, held_mode] : e.holders) {
    if (holder == txn) continue;
    const bool conflicts =
        mode == Mode::kExclusive || held_mode == Mode::kExclusive;
    if (conflicts && txn > holder) {
      kill(txn);
      done(false);
      return;
    }
  }

  e.waiters.push_back({txn, mode, std::move(done), sim_.now()});
}

void TransactionManager::promote(const std::string& key) {
  auto lit = locks_.find(key);
  if (lit == locks_.end()) return;
  LockEntry& e = lit->second;
  while (!e.waiters.empty()) {
    Waiter& front = e.waiters.front();
    auto tit = txns_.find(front.txn);
    if (tit == txns_.end() || tit->second.state != TxnState::kActive) {
      // Waiter died or finished elsewhere; drop silently (its callback
      // already fired via kill()).
      e.waiters.pop_front();
      continue;
    }
    if (!lock_compatible(e, front.txn, front.mode)) break;
    Waiter w = std::move(front);
    e.waiters.pop_front();
    Mode& held = e.holders[w.txn];  // default-inserts kShared
    if (w.mode == Mode::kExclusive) held = Mode::kExclusive;
    txns_[w.txn].locks.insert(key);
    stats_.block_time.add(static_cast<double>(sim_.now() - w.since));
    w.granted(true);
  }
}

void TransactionManager::kill(TxnId txn) {
  auto tit = txns_.find(txn);
  if (tit == txns_.end() || tit->second.state != TxnState::kActive) return;
  ++stats_.wait_die_aborts;
  ++stats_.aborts;
  tit->second.state = TxnState::kAborted;
  release_all(txn);
}

void TransactionManager::release_all(TxnId txn) {
  auto tit = txns_.find(txn);
  if (tit == txns_.end()) return;
  // Fail any waits this transaction still has queued.
  for (auto& [key, entry] : locks_) {
    for (auto wit = entry.waiters.begin(); wit != entry.waiters.end();) {
      if (wit->txn == txn) {
        auto granted = std::move(wit->granted);
        wit = entry.waiters.erase(wit);
        if (granted) granted(false);
      } else {
        ++wit;
      }
    }
  }
  const std::set<std::string> held = std::move(tit->second.locks);
  tit->second.locks.clear();
  for (const std::string& key : held) {
    auto lit = locks_.find(key);
    if (lit == locks_.end()) continue;
    lit->second.holders.erase(txn);
  }
  // Promote after all releases so multi-lock waiters see the full picture.
  for (const std::string& key : held) promote(key);
}

void TransactionManager::read(TxnId txn, const std::string& key,
                              ReadFn done) {
  lock(txn, key, Mode::kShared,
       [this, txn, key, done = std::move(done)](bool ok) {
         if (!ok) {
           done(false, std::nullopt);
           return;
         }
         auto tit = txns_.find(txn);
         if (tit == txns_.end() || tit->second.state != TxnState::kActive) {
           done(false, std::nullopt);
           return;
         }
         // Read-your-writes within the transaction.
         std::optional<std::string> value;
         auto bit = tit->second.write_buffer.find(key);
         if (bit != tit->second.write_buffer.end()) {
           value = bit->second;
         } else {
           value = store_.read(key);
         }
         tit->second.record.ops.push_back({false, key, value});
         done(true, std::move(value));
       });
}

void TransactionManager::write(TxnId txn, const std::string& key,
                               std::string value, WriteFn done) {
  lock(txn, key, Mode::kExclusive,
       [this, txn, key, value = std::move(value),
        done = std::move(done)](bool ok) mutable {
         if (!ok) {
           done(false);
           return;
         }
         auto tit = txns_.find(txn);
         if (tit == txns_.end() || tit->second.state != TxnState::kActive) {
           done(false);
           return;
         }
         tit->second.write_buffer[key] = value;
         tit->second.record.ops.push_back({true, key, std::move(value)});
         done(true);
       });
}

bool TransactionManager::commit(TxnId txn) {
  auto tit = txns_.find(txn);
  if (tit == txns_.end() || tit->second.state != TxnState::kActive)
    return false;
  Txn& t = tit->second;
  for (auto& [key, value] : t.write_buffer) store_.write(key, value);
  t.state = TxnState::kCommitted;
  ++stats_.commits;
  stats_.txn_latency.add(static_cast<double>(sim_.now() - t.began));
  log_.push_back(t.record);
  release_all(txn);
  return true;
}

void TransactionManager::abort(TxnId txn) {
  auto tit = txns_.find(txn);
  if (tit == txns_.end() || tit->second.state != TxnState::kActive) return;
  tit->second.state = TxnState::kAborted;
  ++stats_.aborts;
  release_all(txn);
}

}  // namespace coop::ccontrol
