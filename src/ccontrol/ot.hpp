// Operational transformation for replicated text — the GROVE approach the
// paper highlights in §4.2.1: "operations [are] allowed to proceed
// immediately to improve real-time response time.  To maintain consistency,
// it might be necessary however to execute a transformed operation rather
// than the original operation."
//
// coop implements the Jupiter client/server architecture: each client
// applies local operations immediately (zero response time), ships them to
// a server that serializes and transforms them against concurrent
// operations, and transforms incoming server operations against its own
// in-flight ones.  With the star topology only transformation property TP1
// is required, which the character-granular transform below satisfies
// (deletes are generated one character at a time; inserts may carry
// strings).
//
// The engine is pure logic — messages in, messages out — so it can be
// property-tested exhaustively and wired to any transport (the groupware
// editor uses RPC; the benches drive it directly).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace coop::ccontrol {

/// Site identifier used only to tie-break concurrent inserts at the same
/// position (lower site wins the earlier position, at every replica).
using SiteId = std::uint32_t;

/// A single text operation.  Deletes always remove exactly one character;
/// the editor layer splits longer deletions into character ops.
struct TextOp {
  enum class Kind : std::uint8_t { kInsert, kDelete, kNoop };

  Kind kind = Kind::kNoop;
  std::size_t pos = 0;
  std::string text;  ///< kInsert payload
  SiteId site = 0;

  static TextOp insert(std::size_t pos, std::string text, SiteId site) {
    return {Kind::kInsert, pos, std::move(text), site};
  }
  static TextOp erase(std::size_t pos, SiteId site) {
    return {Kind::kDelete, pos, {}, site};
  }
  static TextOp noop() { return {}; }

  [[nodiscard]] bool is_noop() const noexcept { return kind == Kind::kNoop; }

  /// Applies the operation to @p doc (positions clamp to the document).
  void apply(std::string& doc) const;

  bool operator==(const TextOp&) const = default;
};

/// Inclusion transformation: the version of @p a that has the same effect
/// after @p b has been applied.  Satisfies TP1:
///   apply(apply(S, a), xform(b, a)) == apply(apply(S, b), xform(a, b)).
[[nodiscard]] TextOp transform(const TextOp& a, const TextOp& b);

/// One end of a Jupiter synchronization link.  Symmetric: both the client
/// and each per-client server connection run the same state machine.
class OtLink {
 public:
  struct Message {
    TextOp op;
    std::uint64_t sender_generated = 0;  ///< index of this op on the link
    std::uint64_t sender_received = 0;   ///< peer ops seen when generated
  };

  /// Stamps and records a locally generated operation for sending.
  Message generate(const TextOp& op);

  /// Ingests a peer message; returns the operation transformed into this
  /// side's current context, ready to apply locally.
  TextOp receive(const Message& msg);

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return outgoing_.size();
  }

 private:
  std::deque<std::pair<std::uint64_t, TextOp>> outgoing_;
  std::uint64_t generated_ = 0;
  std::uint64_t received_ = 0;
};

/// Client replica: applies local edits instantly, syncs through one link.
class OtClient {
 public:
  explicit OtClient(SiteId site, std::string initial = {})
      : site_(site), doc_(std::move(initial)) {}

  /// Local user edit: applied immediately; returns the message to ship to
  /// the server.
  OtLink::Message local_insert(std::size_t pos, std::string text);
  OtLink::Message local_delete(std::size_t pos);

  /// Convenience: deletes @p len characters starting at @p pos, returning
  /// one message per character (the wire format is single-char deletes).
  std::vector<OtLink::Message> local_delete_range(std::size_t pos,
                                                  std::size_t len);

  /// Server message: transforms against in-flight local ops and applies.
  void receive(const OtLink::Message& msg);

  [[nodiscard]] const std::string& doc() const noexcept { return doc_; }
  [[nodiscard]] SiteId site() const noexcept { return site_; }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return link_.in_flight();
  }

 private:
  SiteId site_;
  std::string doc_;
  OtLink link_;
};

/// Server replica: serializes all clients' operations.  Pure logic — the
/// caller moves the returned messages to each destination client.
class OtServer {
 public:
  explicit OtServer(std::string initial = {}) : doc_(std::move(initial)) {}

  /// Registers a client connection (its link starts empty).
  void add_client(SiteId site) { links_.try_emplace(site); }
  void remove_client(SiteId site) { links_.erase(site); }

  /// Outgoing fan-out unit: deliver `message` to client `to`.
  struct Outgoing {
    SiteId to;
    OtLink::Message message;
  };

  /// Ingests a client message; applies it to the server document and
  /// returns the transformed operation addressed to every *other* client.
  std::vector<Outgoing> receive(SiteId from, const OtLink::Message& msg);

  [[nodiscard]] const std::string& doc() const noexcept { return doc_; }
  [[nodiscard]] std::size_t client_count() const noexcept {
    return links_.size();
  }

 private:
  std::string doc_;
  std::map<SiteId, OtLink> links_;
};

}  // namespace coop::ccontrol
