// Versioned key-value object store — the "shared information space" of
// Figure 2 that every concurrency-control scheme in coop mediates access to.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace coop::ccontrol {

/// A single-node versioned store.  Replication and remote access are
/// layered above (rpc/, groups/); concurrency *control* is layered above
/// too (locks, transactions, transaction groups) — the store itself is a
/// plain last-writer state container.
class ObjectStore {
 public:
  /// Current value of @p key, if present.
  [[nodiscard]] std::optional<std::string> read(const std::string& key) const {
    auto it = items_.find(key);
    if (it == items_.end()) return std::nullopt;
    return it->second.value;
  }

  /// Overwrites @p key, bumping its version.
  void write(const std::string& key, std::string value) {
    auto& item = items_[key];
    item.value = std::move(value);
    ++item.version;
  }

  /// Removes @p key.  Returns true if it existed.
  bool erase(const std::string& key) { return items_.erase(key) > 0; }

  /// Monotonic per-key version (0 = never written).
  [[nodiscard]] std::uint64_t version(const std::string& key) const {
    auto it = items_.find(key);
    return it == items_.end() ? 0 : it->second.version;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// Snapshot of all keys (test/experiment introspection).
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(items_.size());
    for (const auto& [k, v] : items_) out.push_back(k);
    return out;
  }

  bool operator==(const ObjectStore& other) const {
    if (items_.size() != other.items_.size()) return false;
    for (const auto& [k, v] : items_) {
      auto it = other.items_.find(k);
      if (it == other.items_.end() || it->second.value != v.value)
        return false;
    }
    return true;
  }

 private:
  struct Item {
    std::string value;
    std::uint64_t version = 0;
  };
  std::map<std::string, Item> items_;
};

}  // namespace coop::ccontrol
