// Versioned key-value object store — the "shared information space" of
// Figure 2 that every concurrency-control scheme in coop mediates access to.
#pragma once

#include <cstdint>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace coop::ccontrol {

/// A single-node versioned store.  Replication and remote access are
/// layered above (rpc/, durable/); concurrency *control* is layered above
/// too (locks, transactions, transaction groups) — the store itself is a
/// plain last-writer state container.
///
/// Deletions leave a *tombstone* carrying the deletion's version, so a
/// replication layer (durable::AntiEntropy) can distinguish "deleted at
/// version v" from "never existed" and never resurrects an erased key from
/// a peer that still holds the old value.  Tombstones are bounded: the
/// durability plane GC's them at checkpoint time via gc_tombstones().
class ObjectStore {
 public:
  /// Replication metadata for a deleted key: the version the deletion
  /// occupies in the key's version order, and a caller-supplied stamp
  /// (virtual time in the durability plane) used for TTL-based GC.
  struct Tombstone {
    std::uint64_t version = 0;
    std::uint64_t stamp = 0;
  };

  /// Current value of @p key, if present.
  [[nodiscard]] std::optional<std::string> read(const std::string& key) const {
    auto it = items_.find(key);
    if (it == items_.end()) return std::nullopt;
    return it->second.value;
  }

  /// Overwrites @p key, bumping its version.  A re-write of a deleted key
  /// continues the version order above the tombstone (and clears it), so
  /// the new value dominates the deletion under last-writer-wins.
  void write(const std::string& key, std::string value) {
    auto& item = items_[key];
    std::uint64_t base = item.version;
    if (auto it = tombstones_.find(key); it != tombstones_.end()) {
      if (it->second.version > base) base = it->second.version;
      tombstones_.erase(it);
    }
    item.value = std::move(value);
    item.version = base + 1;
  }

  /// Removes @p key, leaving a tombstone one version above the deleted
  /// value.  Returns true if the key was live.  Erasing an absent key is a
  /// no-op (no tombstone: there is no deletion to replicate).
  bool erase(const std::string& key, std::uint64_t stamp = 0) {
    auto it = items_.find(key);
    if (it == items_.end()) return false;
    tombstones_[key] = {it->second.version + 1, stamp};
    items_.erase(it);
    return true;
  }

  // --- replication / replay applies ---------------------------------------
  //
  // The durability plane replays log records and adopts anti-entropy
  // transfers with *absolute* versions (the version the op had where it
  // originated), never bumping — so replay is idempotent and replicas
  // converge on identical (value, version) pairs.

  /// Sets @p key to (@p value, @p version) verbatim iff the version is not
  /// dominated by the known local version; clears any tombstone the new
  /// version dominates.  Ties overwrite a live value (replay idempotence)
  /// but never a tombstone (deletion wins ties, so a dominated or tied put
  /// cannot resurrect a deleted key).
  void apply_put(const std::string& key, std::string value,
                 std::uint64_t version) {
    if (auto it = tombstones_.find(key); it != tombstones_.end()) {
      if (it->second.version >= version) return;
      tombstones_.erase(it);
    }
    auto it = items_.find(key);
    if (it != items_.end() && it->second.version > version) return;
    items_[key] = {std::move(value), version};
  }

  /// Records a deletion at @p version verbatim: drops the live value if
  /// the deletion dominates it and keeps the highest-version tombstone.
  void apply_erase(const std::string& key, std::uint64_t version,
                   std::uint64_t stamp) {
    auto it = items_.find(key);
    if (it != items_.end() && it->second.version <= version) items_.erase(it);
    auto& t = tombstones_[key];
    if (version >= t.version) t = {version, stamp};
  }

  /// Monotonic per-key version (0 = never written).  A deleted key reports
  /// its tombstone's version, keeping the order monotonic across deletion
  /// and re-creation (first-writer-wins users see a version bump, never a
  /// reset).
  [[nodiscard]] std::uint64_t version(const std::string& key) const {
    auto it = items_.find(key);
    if (it != items_.end()) return it->second.version;
    auto tit = tombstones_.find(key);
    return tit == tombstones_.end() ? 0 : tit->second.version;
  }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// Snapshot of all live keys (test/experiment introspection).
  [[nodiscard]] std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(items_.size());
    for (const auto& [k, v] : items_) out.push_back(k);
    return out;
  }

  /// Live tombstones, keyed by deleted key.
  [[nodiscard]] const std::map<std::string, Tombstone>& tombstones()
      const noexcept {
    return tombstones_;
  }

  /// Garbage-collects tombstones: drops every one with stamp < @p min_stamp,
  /// then — if more than @p max_keep remain — the oldest (by stamp, then
  /// key) until the cap holds.  Returns the number collected.  The
  /// durability plane calls this at checkpoint seal time; a collected
  /// tombstone's deletion is already in every checkpoint that matters, so
  /// the bound trades anti-entropy memory for a TTL on delete/recreate
  /// races.
  std::size_t gc_tombstones(std::uint64_t min_stamp, std::size_t max_keep) {
    std::size_t collected = 0;
    for (auto it = tombstones_.begin(); it != tombstones_.end();) {
      if (it->second.stamp < min_stamp) {
        it = tombstones_.erase(it);
        ++collected;
      } else {
        ++it;
      }
    }
    while (tombstones_.size() > max_keep) {
      auto oldest = tombstones_.begin();
      for (auto it = std::next(tombstones_.begin()); it != tombstones_.end();
           ++it) {
        if (it->second.stamp < oldest->second.stamp) oldest = it;
      }
      tombstones_.erase(oldest);
      ++collected;
    }
    return collected;
  }

  /// Structural equality of the live state: same keys, same values, same
  /// per-key versions.  Versions matter — two replicas holding equal
  /// values at diverged versions have *not* converged (the next
  /// last-writer-wins decision would differ), so the convergence invariant
  /// must see them as unequal.  Tombstones are replication metadata and
  /// deliberately excluded ("deleted" and "never existed" are the same
  /// live state).
  bool operator==(const ObjectStore& other) const {
    if (items_.size() != other.items_.size()) return false;
    for (const auto& [k, v] : items_) {
      auto it = other.items_.find(k);
      if (it == other.items_.end() || it->second.value != v.value ||
          it->second.version != v.version) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Item {
    std::string value;
    std::uint64_t version = 0;
  };
  std::map<std::string, Item> items_;
  std::map<std::string, Tombstone> tombstones_;
};

}  // namespace coop::ccontrol
