// Transaction groups (Skarra & Zdonik): serializability replaced by
// tailorable access rules based on the semantics of the cooperation.
//
// §4.2.1: "Within a transaction group, the notion of serialisability is
// replaced by access rules based on the semantics of the cooperation.
// Access rules provide the *policy* of cooperation and these policies can
// be *tailored* for a particular application by amending the access rules."
//
// A TransactionGroup owns a window of cooperative activity over the shared
// store.  Each member operation is judged by the current AccessRule, which
// sees who else is actively reading/writing the same object and returns
// allow / deny / allow-with-notification.  Swapping the rule at runtime
// *is* the tailoring the paper describes; three canned rules give the
// spectrum from serializable-equivalent to fully cooperative.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ccontrol/locks.hpp"
#include "ccontrol/store.hpp"

namespace coop::ccontrol {

/// Verdict of an access rule for one operation.
enum class RuleDecision : std::uint8_t {
  kAllow,        ///< proceed silently
  kDeny,         ///< refuse the operation
  kAllowNotify,  ///< proceed, and tell overlapping members
};

/// What a rule sees when judging an operation.
struct OpContext {
  ClientId member = 0;
  bool is_write = false;
  std::string key;
  /// Members with an active write on the same key (excluding `member`).
  std::vector<ClientId> active_writers;
  /// Members with an active read on the same key (excluding `member`).
  std::vector<ClientId> active_readers;
};

/// The tailorable cooperation policy.
using AccessRule = std::function<RuleDecision(const OpContext&)>;

struct TxGroupStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t denied = 0;
  std::uint64_t notifications = 0;
};

/// A cooperating group over one store.
class TransactionGroup {
 public:
  explicit TransactionGroup(ObjectStore& store) : store_(store) {
    rule_ = cooperative_rule();
  }

  TransactionGroup(const TransactionGroup&) = delete;
  TransactionGroup& operator=(const TransactionGroup&) = delete;

  // --- membership & policy -------------------------------------------------

  void join(ClientId member) { members_.insert(member); }
  void leave(ClientId member) {
    members_.erase(member);
    end_activity(member);
  }
  [[nodiscard]] bool is_member(ClientId m) const {
    return members_.count(m) != 0;
  }

  /// Replaces the cooperation policy — the "tailoring" operation.
  void set_rule(AccessRule rule) { rule_ = std::move(rule); }

  /// Notification sink: fired at each overlapped member when a rule
  /// returns kAllowNotify.
  void on_notify(
      std::function<void(ClientId notified, const OpContext&)> fn) {
    notify_ = std::move(fn);
  }

  // --- activity windows -----------------------------------------------------

  /// Declares that @p member is actively working on @p key; rules judge
  /// later operations by others against this set.
  void begin_activity(ClientId member, const std::string& key,
                      bool writing) {
    auto& a = activity_[key];
    (writing ? a.writers : a.readers).insert(member);
  }

  /// Ends all of @p member's declared activity (checkpoint/done).
  void end_activity(ClientId member) {
    for (auto& [key, a] : activity_) {
      a.writers.erase(member);
      a.readers.erase(member);
    }
  }

  // --- operations -----------------------------------------------------------

  /// Reads @p key under the current rule; nullopt if denied or absent.
  std::optional<std::string> read(ClientId member, const std::string& key);

  /// Writes @p key under the current rule; false if denied.
  bool write(ClientId member, const std::string& key, std::string value);

  [[nodiscard]] const TxGroupStats& stats() const noexcept { return stats_; }

  // --- canned policies -------------------------------------------------------

  /// Serializable-equivalent: any overlap with an active writer (or a
  /// write over active readers) is denied — behaves like locks.
  static AccessRule serial_rule();

  /// Fully cooperative: everything allowed; overlaps produce
  /// notifications so the social protocol can engage (Figure 2b).
  static AccessRule cooperative_rule();

  /// Ownership policy: only the registered owner may write a key; reads
  /// by others are allowed with notification to the owner.
  static AccessRule owner_rule(std::map<std::string, ClientId> owners);

 private:
  OpContext make_context(ClientId member, const std::string& key,
                         bool is_write) const;
  RuleDecision judge(const OpContext& ctx);

  ObjectStore& store_;
  AccessRule rule_;
  std::set<ClientId> members_;
  struct Activity {
    std::set<ClientId> readers;
    std::set<ClientId> writers;
  };
  std::map<std::string, Activity> activity_;
  std::function<void(ClientId, const OpContext&)> notify_;
  TxGroupStats stats_;
};

}  // namespace coop::ccontrol
