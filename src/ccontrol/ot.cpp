#include "ccontrol/ot.hpp"

#include <algorithm>

namespace coop::ccontrol {

void TextOp::apply(std::string& doc) const {
  switch (kind) {
    case Kind::kInsert: {
      const std::size_t p = std::min(pos, doc.size());
      doc.insert(p, text);
      break;
    }
    case Kind::kDelete:
      if (pos < doc.size()) doc.erase(pos, 1);
      break;
    case Kind::kNoop:
      break;
  }
}

TextOp transform(const TextOp& a, const TextOp& b) {
  using Kind = TextOp::Kind;
  if (a.is_noop() || b.is_noop()) return a;

  TextOp r = a;
  if (a.kind == Kind::kInsert && b.kind == Kind::kInsert) {
    // Ties broken by site id so both replicas shift the same insert.
    if (b.pos < a.pos || (b.pos == a.pos && b.site < a.site))
      r.pos += b.text.size();
    return r;
  }
  if (a.kind == Kind::kInsert && b.kind == Kind::kDelete) {
    if (b.pos < a.pos) r.pos -= 1;
    return r;
  }
  if (a.kind == Kind::kDelete && b.kind == Kind::kInsert) {
    if (b.pos <= a.pos) r.pos += b.text.size();
    return r;
  }
  // delete vs delete (both single character)
  if (b.pos < a.pos) {
    r.pos -= 1;
  } else if (b.pos == a.pos) {
    r = TextOp::noop();  // both removed the same character
  }
  return r;
}

OtLink::Message OtLink::generate(const TextOp& op) {
  Message msg{op, generated_, received_};
  outgoing_.emplace_back(generated_, op);
  ++generated_;
  return msg;
}

TextOp OtLink::receive(const Message& msg) {
  // Drop operations the peer has acknowledged seeing.
  while (!outgoing_.empty() && outgoing_.front().first < msg.sender_received)
    outgoing_.pop_front();

  // Transform the incoming op over every in-flight local op — and each
  // in-flight op over the incoming one, so future receives see updated
  // contexts (the Jupiter state-space walk).
  TextOp incoming = msg.op;
  for (auto& [idx, local] : outgoing_) {
    const TextOp incoming_next = transform(incoming, local);
    local = transform(local, incoming);
    incoming = incoming_next;
  }
  ++received_;
  return incoming;
}

OtLink::Message OtClient::local_insert(std::size_t pos, std::string text) {
  TextOp op = TextOp::insert(pos, std::move(text), site_);
  op.apply(doc_);
  return link_.generate(op);
}

OtLink::Message OtClient::local_delete(std::size_t pos) {
  TextOp op = TextOp::erase(pos, site_);
  op.apply(doc_);
  return link_.generate(op);
}

std::vector<OtLink::Message> OtClient::local_delete_range(std::size_t pos,
                                                          std::size_t len) {
  std::vector<OtLink::Message> msgs;
  msgs.reserve(len);
  // Deleting at the same position `len` times removes the whole range.
  for (std::size_t i = 0; i < len; ++i) msgs.push_back(local_delete(pos));
  return msgs;
}

void OtClient::receive(const OtLink::Message& msg) {
  const TextOp op = link_.receive(msg);
  op.apply(doc_);
}

std::vector<OtServer::Outgoing> OtServer::receive(SiteId from,
                                                  const OtLink::Message& msg) {
  std::vector<Outgoing> out;
  auto it = links_.find(from);
  if (it == links_.end()) return out;
  const TextOp op = it->second.receive(msg);
  op.apply(doc_);
  if (op.is_noop()) {
    // Still consume a slot on other links?  No: noops need not be
    // broadcast; other clients' documents are unaffected.
    return out;
  }
  for (auto& [site, link] : links_) {
    if (site == from) continue;
    out.push_back({site, link.generate(op)});
  }
  return out;
}

}  // namespace coop::ccontrol
