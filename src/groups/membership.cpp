#include "groups/membership.hpp"

#include <algorithm>
#include <utility>

#include "util/codec.hpp"

namespace coop::groups {

namespace {

enum MsgType : std::uint8_t {
  kJoin = 1,
  kLeave = 2,
  kHeartbeat = 3,
  kView = 4,
  kViewAck = 5,
  kHeartbeatAck = 6,  ///< coordinator -> member: lease renewal
  kCoordClaim = 7,    ///< candidate -> last-view members: takeover claim
  kRejoin = 8,        ///< member -> claimant/recovering coordinator: summary
  kCoordAlive = 9,    ///< member -> claimant: "my lease is fresh, go there"
  kRejoinReq = 10,    ///< recovering coordinator -> member: solicit summary
};

void encode_address(util::Writer& w, const net::Address& a) {
  w.put(a.node).put(a.port);
}

net::Address decode_address(util::Reader& r) {
  net::Address a;
  a.node = r.get<net::NodeId>();
  a.port = r.get<net::PortId>();
  return a;
}

void encode_view_body(util::Writer& w, const View& v) {
  w.put(v.id).put(static_cast<std::uint32_t>(v.members.size()));
  for (const auto& m : v.members) encode_address(w, m);
  w.put(static_cast<std::uint32_t>(v.banned.size()));
  for (const auto& b : v.banned) encode_address(w, b);
}

View decode_view_body(util::Reader& r) {
  View v;
  v.id = r.get<std::uint64_t>();
  const auto n = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i)
    v.members.push_back(decode_address(r));
  const auto nb = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < nb && !r.failed(); ++i)
    v.banned.push_back(decode_address(r));
  return v;
}

std::string coord_key(const net::Address& self, const char* leaf) {
  return "groups.membership." + std::to_string(self.node) + ":" +
         std::to_string(self.port) + "." + leaf;
}

}  // namespace

// ---------------------------------------------------------------- coordinator

MembershipCoordinator::MembershipCoordinator(net::Network& net,
                                             net::Address self,
                                             MembershipConfig config)
    : net_(net),
      self_(self),
      config_(config),
      joins_(&net.obs().metrics.counter(coord_key(self, "joins"))),
      leaves_(&net.obs().metrics.counter(coord_key(self, "leaves"))),
      failures_(&net.obs().metrics.counter(coord_key(self, "failures"))),
      evictions_(&net.obs().metrics.counter(coord_key(self, "evictions"))),
      views_(&net.obs().metrics.counter(coord_key(self, "views"))),
      suspensions_(&net.obs().metrics.counter(coord_key(self, "suspensions"))),
      standdowns_(&net.obs().metrics.counter(coord_key(self, "standdowns"))),
      activations_(&net.obs().metrics.counter(coord_key(self, "activations"))),
      sweeper_(net.simulator(), config.sweep_period, [this] { sweep(); }) {
  net_.attach(self_, *this);
  if (config_.timer_jitter > 0.0)
    sweeper_.set_jitter(config_.timer_jitter, &net_.simulator().rng());
  if (config_.enable_failover && config_.recover_on_start) {
    role_ = Role::kRecovering;
    recovery_started_ = net_.simulator().now();
    net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                            "coord_recovering",
                            {{"node", static_cast<double>(self_.node)}});
  }
  sweeper_.start();
}

MembershipCoordinator::MembershipCoordinator(net::Network& net,
                                             net::Address self,
                                             MembershipConfig config,
                                             TakeoverState takeover)
    : MembershipCoordinator(net, self, config) {
  // A promoted coordinator is active by construction, whatever the
  // member's config said about restart recovery.
  role_ = Role::kActive;
  const sim::TimePoint now = net_.simulator().now();
  banned_ = {takeover.baseline.banned.begin(), takeover.baseline.banned.end()};
  view_.id = takeover.id_floor;  // bump_view publishes id_floor + 1
  for (const auto& a : takeover.rejoined) {
    if (banned_.count(a) == 0) states_[a] = {now, 0};
  }
  activations_->inc();
  net_.obs().tracer.event(
      now, obs::Category::kGroup, "coord_activated",
      {{"node", static_cast<double>(self_.node)},
       {"id_floor", static_cast<double>(takeover.id_floor)},
       {"members", static_cast<double>(states_.size())}});
  bump_view();
}

MembershipCoordinator::~MembershipCoordinator() {
  sweeper_.stop();
  net_.detach(self_);
}

void MembershipCoordinator::retire() {
  if (role_ == Role::kRetired) return;
  role_ = Role::kRetired;
  standdowns_->inc();
  net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                          "coord_standdown",
                          {{"node", static_cast<double>(self_.node)}});
  sweeper_.stop();
}

void MembershipCoordinator::bump_view() {
  ++view_.id;
  ++view_changes_;
  view_.members.clear();
  view_.members.reserve(states_.size());
  for (const auto& [addr, st] : states_) view_.members.push_back(addr);
  view_.banned.assign(banned_.begin(), banned_.end());
  views_->inc();
  net_.obs().tracer.event(
      net_.simulator().now(), obs::Category::kGroup, "view",
      {{"id", static_cast<double>(view_.id)},
       {"members", static_cast<double>(view_.members.size())}});
  if (observer_) observer_(view_);
  for (const auto& [addr, st] : states_) send_view(addr);
}

void MembershipCoordinator::send_view(const net::Address& to) {
  util::Writer w;
  w.put(kView);
  encode_view_body(w, view_);
  net_.send({.src = self_, .dst = to, .payload = w.take_buf()});
}

void MembershipCoordinator::evict(const net::Address& member) {
  banned_.insert(member);
  if (states_.erase(member) > 0) {
    evictions_->inc();
    net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                            "evict",
                            {{"node", static_cast<double>(member.node)}});
    bump_view();
  }
}

std::size_t MembershipCoordinator::fresh_member_count(
    sim::TimePoint now) const {
  std::size_t fresh = 0;
  for (const auto& [addr, st] : states_) {
    if (now - st.last_heartbeat <= config_.failure_timeout) ++fresh;
  }
  return fresh;
}

void MembershipCoordinator::sweep() {
  const sim::TimePoint now = net_.simulator().now();
  if (role_ == Role::kRetired) return;
  if (role_ == Role::kRecovering) {
    // The full-rejoin grace (below) may have lapsed with no new summary
    // arriving to trigger the check: re-evaluate on the sweep cadence.
    maybe_activate_from_rejoins();
    return;
  }

  if (config_.enable_failover) {
    // Primary-partition rule, coordinator side: an active coordinator in
    // contact with fewer than a majority of its own last view must assume
    // *it* is the partitioned minority.  It suspends — no evictions, no
    // view bumps, no lease renewals — instead of shrinking the view, so a
    // majority-side successor never has a divergent history to merge with.
    const std::size_t majority =
        view_.members.empty() ? 0 : view_.members.size() / 2 + 1;
    const std::size_t fresh = fresh_member_count(now);
    if (role_ == Role::kSuspended) {
      if (majority > 0 && fresh >= majority &&
          now - suspended_since_ + 2 * config_.heartbeat_period <
              config_.coord_lease_timeout) {
        // Contact returned before any member lease could have expired, so
        // no successor can have been elected: safe to resume.
        role_ = Role::kActive;
        net_.obs().tracer.event(now, obs::Category::kGroup, "coord_resume",
                                {{"node", static_cast<double>(self_.node)}});
      } else if (now - suspended_since_ >= config_.coord_lease_timeout) {
        // Member leases are gone; survivors may have elected a successor.
        // Never act again rather than risk two active coordinators.
        retire();
        return;
      } else {
        return;
      }
    }
    if (majority > 0 && fresh < majority) {
      role_ = Role::kSuspended;
      suspended_since_ = now;
      suspensions_->inc();
      net_.obs().tracer.event(now, obs::Category::kGroup, "coord_suspend",
                              {{"node", static_cast<double>(self_.node)},
                               {"fresh", static_cast<double>(fresh)},
                               {"majority", static_cast<double>(majority)}});
      return;
    }
  }

  std::vector<net::Address> removed;
  for (auto it = states_.begin(); it != states_.end();) {
    if (now - it->second.last_heartbeat > config_.failure_timeout) {
      removed.push_back(it->first);
      it = states_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) {
    failures_->inc(removed.size());
    for (const auto& addr : removed)
      net_.obs().tracer.event(now, obs::Category::kGroup, "member_failed",
                              {{"node", static_cast<double>(addr.node)}});
    bump_view();
    // Tell the suspects they are out: if the suspicion was a lossy-link
    // false positive, the still-live member sees a view without itself
    // and re-joins.  (Administrative evict() deliberately skips this.)
    for (const auto& addr : removed) send_view(addr);
    return;  // bump_view already (re)sent the view to the members
  }
  // Re-send the current view to any member that has not acked it (repairs
  // lost VIEW datagrams).
  for (const auto& [addr, st] : states_) {
    if (st.acked_view < view_.id) send_view(addr);
  }
}

void MembershipCoordinator::maybe_activate_from_rejoins() {
  if (role_ != Role::kRecovering) return;
  const View* base = nullptr;
  std::uint64_t floor = view_.id;
  for (const auto& [addr, v] : rejoins_) {
    floor = std::max(floor, v.id);
    if (base == nullptr || v.id > base->id) base = &v;
  }
  if (base == nullptr || base->members.empty()) return;
  std::size_t pledged = 0;
  for (const auto& [addr, v] : rejoins_) {
    if (base->contains(addr)) ++pledged;
  }
  if (pledged < base->members.size() / 2 + 1) return;
  if (pledged < base->members.size() &&
      net_.simulator().now() - recovery_started_ <
          2 * config_.heartbeat_period) {
    // Majority reached, but live laggards may still be a heartbeat away.
    // Activating now would publish a view that transiently excludes them,
    // which downstream consumers (e.g. a group channel) rightly treat as
    // a failure — so grant the stragglers one more beat.  The grace is
    // far below the member lease: recovery still wins the race against
    // any successor election.
    return;
  }

  // Majority of the last reported view re-joined: this incarnation is the
  // primary partition.  Re-derive bans from the summary, readmit the
  // pledgers, and resume ids strictly above anything a survivor installed.
  const sim::TimePoint now = net_.simulator().now();
  role_ = Role::kActive;
  banned_ = {base->banned.begin(), base->banned.end()};
  view_.id = floor;
  states_.clear();
  for (const auto& [addr, v] : rejoins_) {
    if (banned_.count(addr) == 0) states_[addr] = {now, 0};
  }
  rejoins_.clear();
  activations_->inc();
  net_.obs().tracer.event(now, obs::Category::kGroup, "coord_activated",
                          {{"node", static_cast<double>(self_.node)},
                           {"id_floor", static_cast<double>(floor)},
                           {"members", static_cast<double>(states_.size())}});
  bump_view();
}

void MembershipCoordinator::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  const auto type = r.get<std::uint8_t>();
  if (r.failed() || role_ == Role::kRetired) return;
  const sim::TimePoint now = net_.simulator().now();
  switch (type) {
    case kJoin:
    case kRejoin: {
      if (role_ == Role::kRecovering) {
        if (type == kRejoin) {
          View v = decode_view_body(r);
          if (r.failed()) break;
          rejoins_[msg.src] = std::move(v);
          maybe_activate_from_rejoins();
        } else {
          // We lost all state: ask for the member's summary instead of
          // admitting blind.
          util::Writer w;
          w.put(kRejoinReq);
          net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf()});
        }
        break;
      }
      if (role_ != Role::kActive) break;  // suspended: cannot admit
      if (banned_.count(msg.src) != 0) {
        send_view(msg.src);  // show the banned member it is out
        break;
      }
      auto [it, inserted] = states_.try_emplace(msg.src);
      it->second.last_heartbeat = now;
      if (inserted) {
        joins_->inc();
        net_.obs().tracer.event(now, obs::Category::kGroup, "join",
                                {{"node", static_cast<double>(msg.src.node)}});
        bump_view();
      } else {
        send_view(msg.src);  // duplicate join: re-sync the member
      }
      break;
    }
    case kLeave:
      if (role_ == Role::kActive && states_.erase(msg.src) > 0) {
        leaves_->inc();
        bump_view();
      }
      break;
    case kHeartbeat: {
      if (role_ == Role::kRecovering) {
        util::Writer w;
        w.put(kRejoinReq);
        net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf()});
        break;
      }
      auto it = states_.find(msg.src);
      if (role_ == Role::kSuspended) {
        // Track liveness so a short blip can resume, but renew no lease:
        // if the suspension outlasts the leases, members must be free to
        // elect a successor.
        if (it != states_.end()) it->second.last_heartbeat = now;
        break;
      }
      if (it != states_.end()) {
        it->second.last_heartbeat = now;
        if (config_.enable_failover) {
          util::Writer w;
          w.put(kHeartbeatAck).put(view_.id);
          net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf()});
        }
      } else {
        // Heartbeat from a member we evicted (e.g. while it was
        // disconnected): show it the current view so it notices it is
        // out.  A non-banned member re-joins via its retry timer; a
        // banned one sees itself on the view's ban list and goes quiet
        // instead of claiming the coordinatorship forever.
        send_view(msg.src);
      }
      break;
    }
    case kViewAck: {
      if (role_ != Role::kActive) break;
      const auto id = r.get<std::uint64_t>();
      auto it = states_.find(msg.src);
      if (it != states_.end() && !r.failed())
        it->second.acked_view = std::max(it->second.acked_view, id);
      break;
    }
    case kCoordAlive:
      // A member told this recovering incarnation the group already has a
      // live coordinator: stand down for good.
      if (role_ == Role::kRecovering) retire();
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------- member

MembershipMember::MembershipMember(net::Network& net, net::Address self,
                                   net::Address coordinator,
                                   MembershipConfig config)
    : net_(net),
      self_(self),
      coordinator_(coordinator),
      config_(config),
      lease_expiries_(
          &net.obs().metrics.counter(coord_key(self, "lease_expiries"))),
      claims_(&net.obs().metrics.counter(coord_key(self, "claims"))),
      takeovers_(&net.obs().metrics.counter(coord_key(self, "takeovers"))),
      heartbeat_(net.simulator(), config.heartbeat_period,
                 [this] {
                   // Once the lease is gone, stop feeding the old
                   // coordinator: a suspended coordinator must not see a
                   // fresh majority after member leases expired, and the
                   // claim machinery has taken over liveness.
                   if (lease_expired(net_.simulator().now())) return;
                   if (view_ && view_->bans(self_)) return;  // evicted: quiet
                   send_simple(kHeartbeat);
                 }),
      join_retry_(net.simulator(), config.join_retry_period,
                  [this] {
                    if (view_ && view_->bans(self_)) return;  // evicted
                    if (joined_ && !candidate_ &&
                        (!view_ || !view_->contains(self_)))
                      send_simple(kJoin);
                  }),
      lease_check_(net.simulator(), config.heartbeat_period,
                   [this] { check_lease(); }),
      claim_retry_(net.simulator(), config.claim_retry_period, [this] {
        if (!candidate_) {
          claim_retry_.stop();
          return;
        }
        claims_->inc();
        send_claims();
        maybe_promote();  // the grace may have lapsed with no new pledge
      }) {
  net_.attach(self_, *this);
  if (config_.timer_jitter > 0.0) {
    sim::Rng* rng = &net_.simulator().rng();
    heartbeat_.set_jitter(config_.timer_jitter, rng);
    join_retry_.set_jitter(config_.timer_jitter, rng);
    lease_check_.set_jitter(config_.timer_jitter, rng);
    claim_retry_.set_jitter(config_.timer_jitter, rng);
  }
}

MembershipMember::~MembershipMember() {
  heartbeat_.stop();
  join_retry_.stop();
  lease_check_.stop();
  claim_retry_.stop();
  net_.detach(self_);
}

void MembershipMember::send_simple(std::uint8_t type) {
  util::Writer w;
  w.put(type);
  net_.send({.src = self_, .dst = coordinator_, .payload = w.take_buf()});
}

void MembershipMember::join() {
  joined_ = true;
  send_simple(kJoin);
  heartbeat_.start();
  join_retry_.start();
  if (config_.enable_failover) {
    last_coord_contact_ = net_.simulator().now();  // grace until first view
    lease_check_.start();
  }
}

void MembershipMember::leave() {
  if (!joined_) return;
  joined_ = false;
  heartbeat_.stop();
  join_retry_.stop();
  lease_check_.stop();
  cancel_candidacy();
  send_simple(kLeave);
}

void MembershipMember::set_coordinator(const net::Address& addr) {
  coordinator_ = addr;
  last_coord_contact_ = net_.simulator().now();
  cancel_candidacy();
  if (joined_) send_simple(kJoin);
}

bool MembershipMember::lease_expired(sim::TimePoint now) const {
  return config_.enable_failover && joined_ &&
         now - last_coord_contact_ > config_.coord_lease_timeout;
}

std::size_t MembershipMember::view_rank() const {
  if (!view_) return 0;
  for (std::size_t i = 0; i < view_->members.size(); ++i) {
    if (view_->members[i] == self_) return i;
  }
  return view_->members.size();
}

bool MembershipMember::claim_beats(std::uint64_t id_a, std::size_t rank_a,
                                   const net::Address& a, std::uint64_t id_b,
                                   std::size_t rank_b, const net::Address& b) {
  if (id_a != id_b) return id_a > id_b;  // most recent view wins
  if (rank_a != rank_b) return rank_a < rank_b;
  return a < b;
}

void MembershipMember::cancel_candidacy() {
  candidate_ = false;
  claim_retry_.stop();
  pledges_.clear();
  have_best_claim_ = false;
}

void MembershipMember::send_claims() {
  if (!view_) return;
  util::Writer w;
  w.put(kCoordClaim)
      .put(view_->id)
      .put(static_cast<std::uint32_t>(view_rank()));
  const util::Buf wire = w.take_buf();
  for (const auto& m : view_->members) {
    if (m == self_) continue;
    net_.send({.src = self_, .dst = m, .payload = wire});
  }
}

void MembershipMember::send_rejoin(const net::Address& to) {
  util::Writer w;
  w.put(kRejoin);
  encode_view_body(w, view_ ? *view_ : View{});
  net_.send({.src = self_, .dst = to, .payload = w.take_buf()});
}

void MembershipMember::check_lease() {
  if (!config_.enable_failover || !joined_ || candidate_) return;
  const sim::TimePoint now = net_.simulator().now();
  if (hosted_ && hosted_->active()) {
    last_coord_contact_ = now;  // we are the coordinator's host
    return;
  }
  if (!view_ || view_->bans(self_)) return;  // nothing (legitimate) to claim
  const std::size_t rank = view_rank();
  const sim::TimePoint claim_at =
      last_coord_contact_ + config_.coord_lease_timeout +
      static_cast<sim::Duration>(rank) * config_.takeover_stagger;
  if (now < claim_at) return;

  // Lease gone and every lower rank's stagger window has passed without a
  // new view reaching us: claim the coordinatorship.
  candidate_ = true;
  candidacy_started_ = now;
  lease_expiries_->inc();
  claims_->inc();
  net_.obs().tracer.event(now, obs::Category::kGroup, "coord_lease_expired",
                          {{"node", static_cast<double>(self_.node)},
                           {"rank", static_cast<double>(rank)}});
  pledges_.clear();
  pledges_[self_] = *view_;  // our own summary counts toward the majority
  have_best_claim_ = true;
  best_claim_addr_ = self_;
  best_claim_id_ = view_->id;
  best_claim_rank_ = rank;
  send_claims();
  claim_retry_.start();
  maybe_promote();  // a 1-member view is its own majority
}

void MembershipMember::maybe_promote() {
  if (!candidate_) return;
  const View* base = nullptr;
  std::uint64_t floor = 0;
  for (const auto& [addr, v] : pledges_) {
    floor = std::max(floor, v.id);
    if (base == nullptr || v.id > base->id) base = &v;
  }
  if (base == nullptr || base->members.empty()) return;
  std::size_t pledged = 0;
  for (const auto& [addr, v] : pledges_) {
    if (base->contains(addr)) ++pledged;
  }
  if (pledged < base->members.size() / 2 + 1) return;
  if (pledged < base->members.size() &&
      net_.simulator().now() - candidacy_started_ <
          2 * config_.heartbeat_period) {
    // Majority pledged, but live laggards may still answer the next claim
    // round.  Promoting now would publish a view that transiently excludes
    // them — which downstream consumers treat as a failure — so hold the
    // takeover for one more beat.  The grace is far below the lease: this
    // candidate still wins the race against higher-ranked challengers.
    return;
  }

  // Majority of the last view pledged: activate as the primary partition's
  // coordinator, hosted on our own node at a well-known port offset.
  MembershipCoordinator::TakeoverState ts;
  ts.baseline = *base;
  ts.id_floor = floor;
  ts.rejoined.reserve(pledges_.size());
  for (const auto& [addr, v] : pledges_) ts.rejoined.push_back(addr);
  const net::Address host{
      self_.node,
      static_cast<net::PortId>(self_.port + config_.coordinator_port_offset)};
  takeovers_->inc();
  net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                          "coord_takeover",
                          {{"node", static_cast<double>(self_.node)},
                           {"id_floor", static_cast<double>(floor)},
                           {"pledged", static_cast<double>(pledged)}});
  cancel_candidacy();
  hosted_ =
      std::make_unique<MembershipCoordinator>(net_, host, config_, std::move(ts));
  coordinator_ = host;
  last_coord_contact_ = net_.simulator().now();
}

void MembershipMember::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  const auto type = r.get<std::uint8_t>();
  if (r.failed()) return;
  const sim::TimePoint now = net_.simulator().now();
  switch (type) {
    case kView: {
      View v = decode_view_body(r);
      if (r.failed()) return;

      // Ack regardless of novelty; the coordinator tracks our progress.
      util::Writer w;
      w.put(kViewAck).put(v.id);
      net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf()});

      if (msg.src == coordinator_) last_coord_contact_ = now;
      // Install strictly newer views.  With failover, an equal-id view
      // from a lower address also wins — the deterministic tie-break that
      // collapses the (rare) two-claimants-activated race.
      const bool newer =
          !view_ || v.id > view_->id ||
          (config_.enable_failover && v.id == view_->id &&
           msg.src != coordinator_ && msg.src < coordinator_);
      if (newer) {
        if (config_.enable_failover) {
          // Adopt whoever publishes the newest view as the coordinator.
          if (hosted_ && msg.src != coordinator_) hosted_->retire();
          coordinator_ = msg.src;
          last_coord_contact_ = now;
          cancel_candidacy();
        }
        view_ = std::move(v);
        if (on_view_) on_view_(*view_);
      }
      break;
    }
    case kHeartbeatAck:
      if (config_.enable_failover && msg.src == coordinator_)
        last_coord_contact_ = now;
      break;
    case kCoordClaim: {
      if (!config_.enable_failover) break;
      const auto claim_id = r.get<std::uint64_t>();
      const auto claim_rank = r.get<std::uint32_t>();
      if (r.failed()) break;
      if (view_ && view_->bans(msg.src)) break;  // banned members can't claim
      if (hosted_ && hosted_->active()) {
        util::Writer w;
        w.put(kCoordAlive);
        encode_address(w, coordinator_);
        w.put(view_ ? view_->id : std::uint64_t{0});
        net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf()});
        break;
      }
      if (now - last_coord_contact_ + config_.takeover_stagger <
          config_.coord_lease_timeout) {
        // Our coordinator is alive as far as we know — with a margin: a
        // lease within one stagger of expiry is no grounds to refuse.
        // When the coordinator dies, leases expire within a heartbeat of
        // each other, and a member whose check fires marginally late must
        // pledge rather than refresh the claimant with a stale refusal
        // (near-simultaneous expiry would otherwise livelock on mutual
        // refusals).  Refuse the claim and point the claimant at it.
        util::Writer w;
        w.put(kCoordAlive);
        encode_address(w, coordinator_);
        w.put(view_ ? view_->id : std::uint64_t{0});
        net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf()});
        break;
      }
      if (candidate_) {
        if (claim_beats(claim_id, claim_rank, msg.src,
                        view_ ? view_->id : 0, view_rank(), self_)) {
          cancel_candidacy();  // defer to the better claimant below
        } else {
          break;  // our claim is better; the peer stands down on hearing it
        }
      }
      // Pledge to the best claimant seen since our lease expired.  Only
      // ever pledging to one claimant at a time keeps two candidates from
      // both counting us toward a majority.
      if (!have_best_claim_ ||
          claim_beats(claim_id, claim_rank, msg.src, best_claim_id_,
                      best_claim_rank_, best_claim_addr_)) {
        have_best_claim_ = true;
        best_claim_addr_ = msg.src;
        best_claim_id_ = claim_id;
        best_claim_rank_ = claim_rank;
      }
      if (msg.src == best_claim_addr_) send_rejoin(msg.src);
      break;
    }
    case kRejoin: {
      if (!candidate_) break;
      View v = decode_view_body(r);
      if (r.failed()) break;
      pledges_[msg.src] = std::move(v);
      maybe_promote();
      break;
    }
    case kCoordAlive: {
      if (!config_.enable_failover) break;
      const net::Address alive = decode_address(r);
      if (r.failed()) break;
      if (hosted_ && hosted_->active()) break;  // resolved via view ids
      cancel_candidacy();
      coordinator_ = alive;
      if (alive.node == msg.src.node) {
        last_coord_contact_ = now;  // firsthand: the host vouches for itself
      } else {
        // Secondhand refusal: grant only a probe lease — long enough to
        // heartbeat the named coordinator and hear a real ack (which then
        // grants the full lease), short enough that a refusal based on a
        // near-expired lease cannot keep a dead coordinator "alive"
        // forever by round-robin refresh.
        last_coord_contact_ =
            std::max(last_coord_contact_,
                     now - config_.coord_lease_timeout +
                         2 * config_.heartbeat_period);
      }
      if (joined_) send_simple(kJoin);
      break;
    }
    case kRejoinReq:
      // A recovering coordinator solicits our summary.  Deliberately does
      // not renew the lease: information is free, authority is not — it
      // only returns once the recovering side re-activates with a
      // majority and publishes a view.
      if (config_.enable_failover) send_rejoin(msg.src);
      break;
    default:
      break;
  }
}

}  // namespace coop::groups
