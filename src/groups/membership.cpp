#include "groups/membership.hpp"

#include <algorithm>
#include <utility>

#include "util/codec.hpp"

namespace coop::groups {

namespace {

enum MsgType : std::uint8_t {
  kJoin = 1,
  kLeave = 2,
  kHeartbeat = 3,
  kView = 4,
  kViewAck = 5,
};

void encode_address(util::Writer& w, const net::Address& a) {
  w.put(a.node).put(a.port);
}

net::Address decode_address(util::Reader& r) {
  net::Address a;
  a.node = r.get<net::NodeId>();
  a.port = r.get<net::PortId>();
  return a;
}

std::string coord_key(const net::Address& self, const char* leaf) {
  return "groups.membership." + std::to_string(self.node) + ":" +
         std::to_string(self.port) + "." + leaf;
}

}  // namespace

// ---------------------------------------------------------------- coordinator

MembershipCoordinator::MembershipCoordinator(net::Network& net,
                                             net::Address self,
                                             MembershipConfig config)
    : net_(net),
      self_(self),
      config_(config),
      joins_(&net.obs().metrics.counter(coord_key(self, "joins"))),
      leaves_(&net.obs().metrics.counter(coord_key(self, "leaves"))),
      failures_(&net.obs().metrics.counter(coord_key(self, "failures"))),
      evictions_(&net.obs().metrics.counter(coord_key(self, "evictions"))),
      views_(&net.obs().metrics.counter(coord_key(self, "views"))),
      sweeper_(net.simulator(), config.sweep_period, [this] { sweep(); }) {
  net_.attach(self_, *this);
  sweeper_.start();
}

MembershipCoordinator::~MembershipCoordinator() {
  sweeper_.stop();
  net_.detach(self_);
}

void MembershipCoordinator::bump_view() {
  ++view_.id;
  view_.members.clear();
  view_.members.reserve(states_.size());
  for (const auto& [addr, st] : states_) view_.members.push_back(addr);
  views_->inc();
  net_.obs().tracer.event(
      net_.simulator().now(), obs::Category::kGroup, "view",
      {{"id", static_cast<double>(view_.id)},
       {"members", static_cast<double>(view_.members.size())}});
  if (observer_) observer_(view_);
  for (const auto& [addr, st] : states_) send_view(addr);
}

void MembershipCoordinator::send_view(const net::Address& to) {
  util::Writer w;
  w.put(kView).put(view_.id).put(
      static_cast<std::uint32_t>(view_.members.size()));
  for (const auto& m : view_.members) encode_address(w, m);
  net_.send({.src = self_, .dst = to, .payload = w.take_buf()});
}

void MembershipCoordinator::evict(const net::Address& member) {
  banned_.insert(member);
  if (states_.erase(member) > 0) {
    evictions_->inc();
    net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                            "evict",
                            {{"node", static_cast<double>(member.node)}});
    bump_view();
  }
}

void MembershipCoordinator::sweep() {
  const sim::TimePoint now = net_.simulator().now();
  std::vector<net::Address> removed;
  for (auto it = states_.begin(); it != states_.end();) {
    if (now - it->second.last_heartbeat > config_.failure_timeout) {
      removed.push_back(it->first);
      it = states_.erase(it);
    } else {
      ++it;
    }
  }
  if (!removed.empty()) {
    failures_->inc(removed.size());
    for (const auto& addr : removed)
      net_.obs().tracer.event(now, obs::Category::kGroup, "member_failed",
                              {{"node", static_cast<double>(addr.node)}});
    bump_view();
    // Tell the suspects they are out: if the suspicion was a lossy-link
    // false positive, the still-live member sees a view without itself
    // and re-joins.  (Administrative evict() deliberately skips this.)
    for (const auto& addr : removed) send_view(addr);
    return;  // bump_view already (re)sent the view to the members
  }
  // Re-send the current view to any member that has not acked it (repairs
  // lost VIEW datagrams).
  for (const auto& [addr, st] : states_) {
    if (st.acked_view < view_.id) send_view(addr);
  }
}

void MembershipCoordinator::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  const auto type = r.get<std::uint8_t>();
  if (r.failed()) return;
  switch (type) {
    case kJoin: {
      if (banned_.count(msg.src) != 0) {
        send_view(msg.src);  // show the banned member it is out
        break;
      }
      auto [it, inserted] = states_.try_emplace(msg.src);
      it->second.last_heartbeat = net_.simulator().now();
      if (inserted) {
        joins_->inc();
        net_.obs().tracer.event(net_.simulator().now(),
                                obs::Category::kGroup, "join",
                                {{"node", static_cast<double>(msg.src.node)}});
        bump_view();
      } else {
        send_view(msg.src);  // duplicate join: re-sync the member
      }
      break;
    }
    case kLeave:
      if (states_.erase(msg.src) > 0) {
        leaves_->inc();
        bump_view();
      }
      break;
    case kHeartbeat: {
      auto it = states_.find(msg.src);
      if (it != states_.end()) {
        it->second.last_heartbeat = net_.simulator().now();
      } else if (banned_.count(msg.src) == 0) {
        // Heartbeat from a member we evicted (e.g. while it was
        // disconnected): show it the current view so it notices it is
        // out and re-joins via its retry timer.
        send_view(msg.src);
      }
      break;
    }
    case kViewAck: {
      const auto id = r.get<std::uint64_t>();
      auto it = states_.find(msg.src);
      if (it != states_.end() && !r.failed())
        it->second.acked_view = std::max(it->second.acked_view, id);
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------- member

MembershipMember::MembershipMember(net::Network& net, net::Address self,
                                   net::Address coordinator,
                                   MembershipConfig config)
    : net_(net),
      self_(self),
      coordinator_(coordinator),
      config_(config),
      heartbeat_(net.simulator(), config.heartbeat_period,
                 [this] { send_simple(kHeartbeat); }),
      join_retry_(net.simulator(), config.join_retry_period, [this] {
        if (joined_ && (!view_ || !view_->contains(self_)))
          send_simple(kJoin);
      }) {
  net_.attach(self_, *this);
}

MembershipMember::~MembershipMember() {
  heartbeat_.stop();
  join_retry_.stop();
  net_.detach(self_);
}

void MembershipMember::send_simple(std::uint8_t type) {
  util::Writer w;
  w.put(type);
  net_.send({.src = self_, .dst = coordinator_, .payload = w.take_buf()});
}

void MembershipMember::join() {
  joined_ = true;
  send_simple(kJoin);
  heartbeat_.start();
  join_retry_.start();
}

void MembershipMember::leave() {
  if (!joined_) return;
  joined_ = false;
  heartbeat_.stop();
  join_retry_.stop();
  send_simple(kLeave);
}

void MembershipMember::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  const auto type = r.get<std::uint8_t>();
  if (r.failed() || type != kView) return;
  View v;
  v.id = r.get<std::uint64_t>();
  const auto n = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i)
    v.members.push_back(decode_address(r));
  if (r.failed()) return;

  // Ack regardless of novelty; the coordinator tracks our progress.
  util::Writer w;
  w.put(kViewAck).put(v.id);
  net_.send({.src = self_, .dst = coordinator_, .payload = w.take_buf()});

  if (!view_ || v.id > view_->id) {
    view_ = std::move(v);
    if (on_view_) on_view_(*view_);
  }
}

}  // namespace coop::groups
