// Reliable, ordered group communication — the engineering-viewpoint group
// support the paper calls for in §4.2.2-iv.
//
// GroupChannel layers three guarantees over the lossy, reordering simulated
// network:
//
//   1. Reliability: positive acknowledgement with retransmission and
//      receiver-side duplicate suppression (at-least-once on the wire,
//      exactly-once delivery to the application).
//   2. Ordering, selectable per channel:
//        kUnordered — deliver on arrival,
//        kFifo      — per-sender sequence order (hold-back queue),
//        kCausal    — vector-clock causal order (Birman-style CBCAST),
//        kTotal     — sequencer-based total order (the first live member
//                     acts as sequencer; all members deliver in the same
//                     global sequence).
//   3. Failure masking: members marked failed are dropped from the ack
//      quorum so the sender does not retransmit forever.
//
// Site indices: every member occupies a fixed slot in the member list.
// Slots are append-only — a failed member's slot is marked dead rather than
// compacted — so vector-clock components never need remapping mid-session.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "time/logical_clocks.hpp"

namespace coop::groups {

/// Delivery-order guarantee of a channel.
enum class Ordering : std::uint8_t {
  kUnordered = 0,
  kFifo = 1,
  kCausal = 2,
  kTotal = 3,
};

/// What the application sees for each delivered message.
struct Delivery {
  std::size_t sender = 0;        ///< site index of the originator
  net::Address sender_addr;      ///< address of the originator
  std::uint64_t seq = 0;         ///< per-sender sequence number
  std::uint64_t total_seq = 0;   ///< global sequence (kTotal only)
  std::string payload;
  sim::TimePoint sent_at = 0;    ///< virtual time of the original broadcast
  /// Causal context of this delivery (descends from the originating
  /// broadcast, through every network hop and sequencer relay).  Pass it
  /// as the parent of any work the delivery triggers to keep the chain
  /// in one trace.
  obs::CausalContext ctx{};
};

/// Channel tuning knobs.
struct ChannelConfig {
  Ordering ordering = Ordering::kFifo;
  sim::Duration retransmit_timeout = sim::msec(50);
  int max_retransmits = 10;
  /// Sender delivers its own broadcast locally without a network round
  /// trip (kTotal ignores this: local delivery waits for the sequencer).
  bool local_echo = true;
  /// Scheduling class stamped on every frame this channel sends; the
  /// overload plane sheds lowest-priority-first.  Group streams carrying
  /// awareness/media should run kBackground, membership kControl.
  net::Priority priority = net::Priority::kCore;
  /// Relative deadline applied to each broadcast (absolute deadline =
  /// broadcast time + this); 0 = none.  Propagated in message headers so
  /// the total-order sequencer drops expired requests on dequeue and
  /// retransmission stops once the work is pointless.
  sim::Duration broadcast_deadline = 0;
  /// Bound on the receive hold-back queue; 0 = unbounded.  An arrival
  /// that is not yet deliverable while the queue is full is shed *before*
  /// it is acknowledged or deduped, so the sender's retransmission
  /// redelivers it once space exists — bounded memory without breaking
  /// the reliability contract.
  std::size_t max_holdback = 0;
  /// Bound on the sequencer's per-sender stash of out-of-order ordering
  /// requests; 0 = unbounded.  Over the cap the request is dropped
  /// *unacked* (retransmit backpressure) rather than queued without
  /// bound.
  std::size_t sequencer_stash_cap = 0;
  /// kTotal: close the sequencer-failover loss window.  The promoted
  /// sequencer solicits every survivor's delivered tail plus each
  /// sender's buffer of acked-but-not-yet-self-delivered requests, and
  /// replays them into the new epoch in the old global order — so a
  /// broadcast the dead sequencer acknowledged but never finished
  /// relaying is re-sequenced instead of lost.  Off = legacy behavior
  /// (resume from the new sequencer's own prefix; acked-but-unrelayed
  /// messages may be lost and are counted in stats().failover_lost).
  bool failover_replay = true;
  /// kTotal failover recovery: per-member bound (entries) on the retained
  /// tail of past deliveries that seeds the replay.  Survivors lagging
  /// further behind the common prefix than this cannot be caught up by
  /// recovery alone (retransmission still repairs them pre-failover).
  std::size_t recovery_tail = 128;
  /// kTotal failover recovery: the promoted sequencer waits at most this
  /// long for solicited summaries before proceeding with what arrived
  /// (covers survivors that die mid-recovery without a view change).
  sim::Duration recovery_timeout = sim::msec(500);
};

/// Channel statistics for experiment accounting.
struct ChannelStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t gave_up = 0;        ///< messages that exhausted retries
  std::uint64_t held_back_max = 0;  ///< high-water mark of hold-back queue
  std::uint64_t held_back_shed = 0;  ///< arrivals shed: hold-back at cap
  std::uint64_t stash_shed = 0;      ///< ordering reqs dropped unacked at cap
  std::uint64_t expired_drops = 0;   ///< reqs dropped expired at sequencing
  std::uint64_t expired_abandoned = 0;  ///< retransmissions stopped: expired
  std::uint64_t failover_lost = 0;   ///< acked broadcasts lost to failover
  std::uint64_t failover_replayed = 0;  ///< broadcasts replayed at failover
  std::uint64_t phantom_commits = 0;  ///< re-sequenced slots committed w/o
                                      ///< redelivery (already delivered)
};

/// One member's endpoint of a reliable ordered group channel.
class GroupChannel : public net::Endpoint {
 public:
  using DeliverFn = std::function<void(const Delivery&)>;

  /// Creates the member endpoint and attaches it to the network at
  /// @p self.  Call set_members() before the first broadcast.
  GroupChannel(net::Network& net, net::Address self, net::McastId group,
               ChannelConfig config = {});
  ~GroupChannel() override;

  GroupChannel(const GroupChannel&) = delete;
  GroupChannel& operator=(const GroupChannel&) = delete;

  /// Fixes the member list (identical order at every member).  The slot of
  /// @p self in this list becomes this member's site index.
  void set_members(const std::vector<net::Address>& members);

  /// Registers the application delivery callback.
  void on_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Broadcasts @p payload to the group with the configured guarantees.
  /// Returns this member's per-sender sequence number for the message.
  /// @p parent optionally links the broadcast into an existing trace (a
  /// user-action context); when invalid the broadcast starts a fresh
  /// trace.  Retransmissions and every member's delivery descend from it.
  std::uint64_t broadcast(std::string payload,
                          const obs::CausalContext& parent = {});

  /// Marks a member failed: no further acks expected from it, pending
  /// retransmissions to it are abandoned.  (Fed by the membership
  /// service's failure detector.)
  ///
  /// kTotal sequencer failover: if the failed member was the sequencer,
  /// the lowest surviving slot takes over in a new *epoch*.  Unacked
  /// ordering requests are re-routed to the new sequencer.
  ///
  /// With ChannelConfig::failover_replay (default) the new sequencer runs
  /// a recovery round first: it solicits every survivor's delivered tail
  /// and un-relayed-but-acked request buffer, re-sequences the recovered
  /// suffix into the new epoch in the old global order, and replays the
  /// acked requests the dead sequencer never relayed — so survivors agree
  /// on one order that *extends* each survivor's delivered prefix and no
  /// acked broadcast from a surviving sender is lost, even when the
  /// coordinator dies in the same incident.  With replay disabled the new
  /// sequencer resumes from its own delivered prefix and messages the old
  /// sequencer acknowledged but did not finish relaying may be lost
  /// (counted in stats().failover_lost).
  void mark_failed(const net::Address& member);

  [[nodiscard]] std::size_t self_index() const noexcept { return self_index_; }
  [[nodiscard]] net::Address self() const noexcept { return self_; }
  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return members_.size();
  }
  [[nodiscard]] bool is_sequencer() const noexcept;

  void on_message(const net::Message& msg) override;

 private:
  enum class MsgType : std::uint8_t {
    kData = 1,      ///< reliable broadcast payload
    kAck = 2,       ///< receiver ack for kData
    kTotalReq = 3,  ///< sender -> sequencer ordering request
    kSolicit = 4,   ///< new sequencer -> members: send recovery summaries
    kRecover = 5,   ///< member -> new sequencer: tail + un-relayed requests
  };

  struct Pending {  // sender side: awaiting acks
    util::Buf wire;                  ///< encoded DATA, shared by resends
    std::set<std::size_t> awaiting;  ///< member slots yet to ack
    int retries = 0;
    sim::EventId timer = sim::kInvalidEvent;
    bool is_total_req = false;       ///< re-route to new sequencer on fail
    sim::TimePoint deadline = 0;     ///< stamped on (re)sends; 0 = none
    obs::CausalContext ctx{};        ///< broadcast span; resends are children
  };

  struct HeldBack {  // receiver side: not yet deliverable
    Delivery delivery;
    logical::VectorClock vclock;   // kCausal only
    std::uint32_t epoch = 0;       // kTotal only: sequencing epoch
    bool phantom = false;  // kTotal replay: commit the slot, don't redeliver
  };

  void send_data(std::uint64_t seq, const util::Buf& wire,
                 const obs::CausalContext& ctx, sim::TimePoint deadline);
  void arm_retransmit(std::uint64_t seq);
  void handle_data(const net::Message& msg);
  /// Ordering-agnostic "could this be delivered right now" predicate,
  /// shared by try_deliver / flush_holdback / the hold-back bound.
  [[nodiscard]] bool deliverable_now(const HeldBack& hb) const;
  /// Commits the ordering cursors for a delivery about to happen.
  void commit_order(const HeldBack& hb);
  void handle_ack(const net::Message& msg);
  void handle_total_req(const net::Message& msg);
  void sequence_ready_reqs(std::size_t sender);
  void try_deliver(HeldBack hb);
  void flush_holdback();
  void deliver_now(const Delivery& d);

  util::Buf encode_data(std::size_t sender, std::uint64_t seq,
                          std::uint64_t total_seq, sim::TimePoint sent_at,
                          const logical::VectorClock& vc,
                          const std::string& payload) const;

  net::Network& net_;
  net::Address self_;
  net::McastId group_;
  ChannelConfig config_;
  std::vector<net::Address> members_;
  std::vector<bool> alive_;
  std::size_t self_index_ = 0;
  DeliverFn deliver_;

  std::uint64_t next_seq_ = 1;                   // own per-sender seq
  std::map<std::uint64_t, Pending> pending_;     // own unacked broadcasts
  std::vector<std::uint64_t> next_expected_;     // FIFO: per-sender cursor
  std::vector<std::set<std::uint64_t>> seen_;    // dedupe per sender
  std::deque<HeldBack> holdback_;
  logical::VectorClock vclock_;                  // causal state

  // kTotal sequencer state (only used at the sequencer slot).  Ordering
  // requests are sequenced in per-sender seq order — not raw arrival
  // order — so total order preserves each sender's FIFO order even when
  // the network reorders requests in flight.
  struct StashedReq {
    sim::TimePoint sent_at;
    std::string payload;
    sim::TimePoint deadline = 0;  ///< from the request header; 0 = none
    obs::CausalContext ctx{};  ///< context of the arriving ordering request
  };
  std::uint64_t next_total_seq_ = 1;
  std::uint64_t next_expected_total_ = 1;  // receiver cursor for total order
  std::uint32_t epoch_ = 0;                // receiver: current sequencer slot
  bool resync_ = false;  // new sequencer: relax req contiguity once
  std::vector<std::uint64_t> next_req_;    // per-sender request cursor
  std::vector<std::map<std::uint64_t, StashedReq>> stashed_reqs_;

  // kTotal failover-recovery state (failover_replay).
  //
  // Every member retains a bounded tail of its past total-order deliveries
  // (delivered_tail_) and every sender keeps the payload of each broadcast
  // until it has delivered it *itself* (relay_wait_ — once self-delivered,
  // the whole group's sequencer has relayed it and it can no longer be
  // lost to a sequencer crash).  On takeover the new sequencer solicits
  // both from all survivors and replays them into the new epoch.
  struct TailEntry {
    std::uint32_t sender = 0;
    std::uint64_t seq = 0;
    std::uint32_t epoch = 0;     ///< epoch the delivery committed under
    std::uint64_t total = 0;     ///< total_seq the delivery committed under
    sim::TimePoint sent_at = 0;
    std::string payload;
  };
  struct RelayWait {  // an own broadcast not yet delivered back to us
    sim::TimePoint sent_at = 0;
    sim::TimePoint deadline = 0;
    std::string payload;
    obs::CausalContext ctx{};
  };
  struct ReplayReq {  // recovered un-relayed request, keyed by (sender,seq)
    std::uint32_t sender = 0;
    std::uint64_t seq = 0;
    sim::TimePoint sent_at = 0;
    sim::TimePoint deadline = 0;
    std::string payload;
  };
  std::deque<TailEntry> delivered_tail_;
  std::map<std::uint64_t, RelayWait> relay_wait_;  // own seq -> payload
  bool recovering_ = false;
  std::set<std::size_t> recover_await_;            // slots yet to answer
  std::map<std::uint64_t, TailEntry> recovered_;   // pending_key -> entry
  std::map<std::uint64_t, ReplayReq> relay_replays_;
  std::pair<std::uint32_t, std::uint64_t> recover_min_pos_{0, 0};
  sim::TimePoint recover_started_ = 0;
  sim::EventId recover_timer_ = sim::kInvalidEvent;

  /// kTotal with the replay protocol active (dedupe becomes delivery-based
  /// so re-sequenced copies of undelivered messages are not swallowed).
  [[nodiscard]] bool total_replay() const noexcept {
    return config_.ordering == Ordering::kTotal && config_.failover_replay;
  }
  void tail_push(std::uint32_t sender, std::uint64_t seq, std::uint32_t epoch,
                 std::uint64_t total, sim::TimePoint sent_at,
                 const std::string& payload);
  void begin_recovery();
  void send_solicits();
  void handle_solicit(const net::Message& msg);
  void handle_recover(const net::Message& msg);
  void finish_recovery();
  void resequence(std::uint32_t sender, std::uint64_t seq,
                  sim::TimePoint sent_at, std::string payload);

  [[nodiscard]] std::size_t sequencer_slot() const;
  void take_over_sequencing();

  // Hot storage for the channel's counters; the registry reads it through
  // polled views under metric_prefix_ (retired/frozen in the destructor).
  ChannelStats stats_;
  std::string metric_prefix_;
  // Observability plane: windowed delivery rate and the wall-clock cost
  // of the application delivery callback.
  obs::Timeseries::SeriesId ts_delivered_;
  obs::Profiler::SiteId prof_deliver_;
};

}  // namespace coop::groups
