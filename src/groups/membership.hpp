// Group membership with heartbeat failure detection, view changes, and
// (opt-in) coordinator failover.
//
// CSCW sessions are long-lived and people join, leave, crash and roam
// (§3.1's seamless transitions; §4.2.2's disconnection).  The membership
// service tracks who is currently in a session and publishes *views* —
// numbered membership snapshots — to every member.
//
// Architecture: a coordinator endpoint (typically co-located with the
// session's server object) accepts JOIN/LEAVE, expects periodic HEARTBEATs,
// and sweeps for members whose heartbeats stopped.  Views are disseminated
// reliably: each member acks the view id it has installed, and the sweep
// re-sends the current view to anyone behind — so a lost VIEW datagram only
// delays, never loses, a membership change.
//
// Failover (MembershipConfig::enable_failover): the coordinator is no
// longer a single point of failure.  Members *lease* the coordinator —
// every heartbeat is answered with a HEARTBEAT_ACK that renews the lease —
// and when a member's lease expires it claims the coordinatorship, rank-
// staggered by its position in the last installed view so the lowest
// surviving member deterministically claims first.  A claimant collects
// REJOIN summaries (each member's last installed view, bans included) and
// only activates once a majority of that view has pledged — the
// *primary-partition rule*: a minority fragment can never install views, so
// a healed partition never has to merge two divergent view histories.  The
// promoted coordinator resumes view ids strictly above the highest id any
// survivor reported, keeping ids monotone across any number of failovers.
// Symmetrically, an active coordinator that loses contact with a majority
// of its own view *suspends* (no evictions, no view bumps, no lease
// renewals) instead of shrinking the view — it resumes only if contact
// returns before member leases ran out, and permanently retires otherwise.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::groups {

/// A numbered membership snapshot.  The ban list travels with the view so
/// a member promoted to coordinator re-derives access-control state from
/// the survivors' summaries instead of losing it with the old coordinator.
struct View {
  std::uint64_t id = 0;
  std::vector<net::Address> members;
  std::vector<net::Address> banned;

  [[nodiscard]] bool contains(const net::Address& a) const {
    for (const auto& m : members)
      if (m == a) return true;
    return false;
  }

  [[nodiscard]] bool bans(const net::Address& a) const {
    for (const auto& b : banned)
      if (b == a) return true;
    return false;
  }
};

/// Tuning for both sides of the membership protocol.
struct MembershipConfig {
  sim::Duration heartbeat_period = sim::msec(100);
  /// A member is suspected failed after this long without a heartbeat.
  sim::Duration failure_timeout = sim::msec(350);
  /// Coordinator sweep cadence (failure checks + view re-send).
  sim::Duration sweep_period = sim::msec(100);
  /// Member re-sends JOIN at this cadence until a view containing it
  /// arrives (repairs a lost JOIN datagram, and re-admits a member that a
  /// lossy link caused the failure detector to evict).
  sim::Duration join_retry_period = sim::msec(200);

  // --- coordinator failover (opt-in) ---------------------------------------

  /// Enables lease-based coordinator failure detection and member-driven
  /// takeover.  Off by default: a fixed coordinator stays authoritative
  /// and none of the knobs below apply.
  bool enable_failover = false;
  /// Member-side coordinator lease: with no coordinator contact (view or
  /// heartbeat-ack) for this long the lease is expired — the member stops
  /// heartbeating the old coordinator and starts claiming.  Must comfortably
  /// exceed failure_timeout so an active coordinator always notices a lost
  /// majority (and suspends) before any member lease runs out.
  sim::Duration coord_lease_timeout = sim::msec(700);
  /// Claim stagger per rank in the last installed view: rank r claims at
  /// lease expiry + r * this, so the lowest surviving rank wins
  /// deterministically without an election round.
  sim::Duration takeover_stagger = sim::msec(150);
  /// Candidate re-sends its claim at this cadence until it activates,
  /// adopts another coordinator, or stands down to a better claimant.
  sim::Duration claim_retry_period = sim::msec(150);
  /// A promoted member hosts its coordinator endpoint at
  /// {node, member port + this offset}.
  net::PortId coordinator_port_offset = 1000;
  /// Coordinator restart semantics: start in a recovering role that lost
  /// all state — it solicits REJOIN summaries from whoever still talks to
  /// it and only re-activates with a majority of the reported last view
  /// (same primary-partition rule as a takeover).  If the group has moved
  /// to a successor meanwhile, it learns so and retires.
  bool recover_on_start = false;
  /// Deterministic multiplicative jitter applied to the heartbeat, sweep,
  /// join-retry and claim timers (drawn from the simulator's seeded rng),
  /// so a fleet of members does not fire in lockstep at the default
  /// msec(100) cadence.  0 = lockstep (legacy behavior).
  double timer_jitter = 0.0;
};

/// Coordinator side: owns the authoritative view.
class MembershipCoordinator : public net::Endpoint {
 public:
  /// Lifecycle role.  Only an active coordinator mutates or disseminates
  /// views; every other role is inert with respect to membership, which is
  /// what makes "at most one active coordinator per primary partition"
  /// hold.
  enum class Role : std::uint8_t {
    kActive,      ///< authoritative: admits, evicts, bumps views
    kRecovering,  ///< restarted with no state; collecting REJOIN summaries
    kSuspended,   ///< lost a majority of its view; parked, may resume
    kRetired,     ///< permanently stood down (successor took over)
  };

  /// State a takeover claimant recovered from survivor summaries, used to
  /// seed a promoted coordinator.
  struct TakeoverState {
    View baseline;                       ///< highest-id view any survivor had
    std::uint64_t id_floor = 0;          ///< max view id reported anywhere
    std::vector<net::Address> rejoined;  ///< members that pledged (incl. self)
  };

  MembershipCoordinator(net::Network& net, net::Address self,
                        MembershipConfig config = {});
  /// Promotion constructor: starts active with the recovered view state
  /// installed — the first view it disseminates has id id_floor + 1, the
  /// pledged members as its membership, and the baseline's ban list.
  MembershipCoordinator(net::Network& net, net::Address self,
                        MembershipConfig config, TakeoverState takeover);
  ~MembershipCoordinator() override;

  MembershipCoordinator(const MembershipCoordinator&) = delete;
  MembershipCoordinator& operator=(const MembershipCoordinator&) = delete;

  [[nodiscard]] const View& view() const noexcept { return view_; }

  /// Observer invoked on every view change (for session logic co-located
  /// with the coordinator).
  void on_view_change(std::function<void(const View&)> fn) {
    observer_ = std::move(fn);
  }

  /// Administratively evicts a member (e.g. access-control revocation).
  /// The member is also banned: its join/heartbeat traffic is ignored
  /// until readmit() lifts the ban.
  void evict(const net::Address& member);

  /// Lifts an administrative ban; the member may join again.
  void readmit(const net::Address& member) { banned_.erase(member); }

  /// Permanently stands this coordinator down (e.g. its host learned a
  /// successor installed a higher view).
  void retire();

  void on_message(const net::Message& msg) override;

  /// Number of view changes this coordinator has published.  Distinct from
  /// view().id: after a failover the promoted coordinator resumes ids above
  /// the survivor max, so the id and the change count diverge.
  [[nodiscard]] std::uint64_t view_changes() const noexcept {
    return view_changes_;
  }

  [[nodiscard]] Role role() const noexcept { return role_; }
  [[nodiscard]] bool active() const noexcept { return role_ == Role::kActive; }

  /// Members removed by the failure detector so far.
  [[nodiscard]] std::uint64_t failures_detected() const noexcept {
    return failures_->value();
  }

 private:
  struct MemberState {
    sim::TimePoint last_heartbeat = 0;
    std::uint64_t acked_view = 0;
  };

  void bump_view();
  void send_view(const net::Address& to);
  void sweep();
  void maybe_activate_from_rejoins();
  [[nodiscard]] std::size_t fresh_member_count(sim::TimePoint now) const;

  net::Network& net_;
  net::Address self_;
  MembershipConfig config_;
  Role role_ = Role::kActive;
  View view_;
  std::map<net::Address, MemberState> states_;
  std::set<net::Address> banned_;
  std::function<void(const View&)> observer_;
  std::uint64_t view_changes_ = 0;
  // Recovery (recover_on_start): last-view summaries collected so far.
  std::map<net::Address, View> rejoins_;
  sim::TimePoint recovery_started_ = 0;
  sim::TimePoint suspended_since_ = 0;
  // Registry-owned ("groups.membership.<node>:<port>.*").
  util::Counter* joins_;
  util::Counter* leaves_;
  util::Counter* failures_;
  util::Counter* evictions_;
  util::Counter* views_;
  util::Counter* suspensions_;
  util::Counter* standdowns_;
  util::Counter* activations_;
  sim::PeriodicTimer sweeper_;
};

/// Member side: joins, heartbeats, installs views — and, with failover
/// enabled, leases the coordinator and claims the role when the lease
/// expires.
class MembershipMember : public net::Endpoint {
 public:
  MembershipMember(net::Network& net, net::Address self,
                   net::Address coordinator, MembershipConfig config = {});
  ~MembershipMember() override;

  MembershipMember(const MembershipMember&) = delete;
  MembershipMember& operator=(const MembershipMember&) = delete;

  /// Announces this member and starts heartbeating.
  void join();

  /// Gracefully departs (stops heartbeating; coordinator removes us).
  void leave();

  /// Callback invoked whenever a new view is installed.
  void on_view(std::function<void(const View&)> fn) {
    on_view_ = std::move(fn);
  }

  /// Most recently installed view, if any.
  [[nodiscard]] const std::optional<View>& view() const noexcept {
    return view_;
  }

  [[nodiscard]] bool joined() const noexcept { return joined_; }

  /// Address this member currently believes is the coordinator (moves on
  /// failover).
  [[nodiscard]] const net::Address& coordinator() const noexcept {
    return coordinator_;
  }

  /// Points the member at a (new) coordinator address — out-of-band
  /// discovery for a member that restarts after its configured seed
  /// coordinator died and the group moved on.
  void set_coordinator(const net::Address& addr);

  /// Non-null while this member hosts the promoted coordinator.
  [[nodiscard]] MembershipCoordinator* hosted_coordinator() const noexcept {
    return hosted_.get();
  }

  [[nodiscard]] bool is_candidate() const noexcept { return candidate_; }

  void on_message(const net::Message& msg) override;

 private:
  void send_simple(std::uint8_t type);
  void send_rejoin(const net::Address& to);
  void send_claims();
  void check_lease();
  void cancel_candidacy();
  void maybe_promote();
  [[nodiscard]] std::size_t view_rank() const;
  [[nodiscard]] bool lease_expired(sim::TimePoint now) const;
  /// Deterministic claimant precedence: higher last-view id wins, then
  /// lower rank, then lower address.
  [[nodiscard]] static bool claim_beats(std::uint64_t id_a, std::size_t rank_a,
                                        const net::Address& a,
                                        std::uint64_t id_b, std::size_t rank_b,
                                        const net::Address& b);

  net::Network& net_;
  net::Address self_;
  net::Address coordinator_;
  MembershipConfig config_;
  bool joined_ = false;
  std::optional<View> view_;
  std::function<void(const View&)> on_view_;
  // Failover state.
  sim::TimePoint last_coord_contact_ = 0;
  bool candidate_ = false;
  sim::TimePoint candidacy_started_ = 0;
  std::map<net::Address, View> pledges_;  ///< candidate: collected rejoins
  bool have_best_claim_ = false;
  net::Address best_claim_addr_{};
  std::uint64_t best_claim_id_ = 0;
  std::size_t best_claim_rank_ = 0;
  std::unique_ptr<MembershipCoordinator> hosted_;
  // Registry-owned ("groups.membership.<node>:<port>.*").
  util::Counter* lease_expiries_;
  util::Counter* claims_;
  util::Counter* takeovers_;
  sim::PeriodicTimer heartbeat_;
  sim::PeriodicTimer join_retry_;
  sim::PeriodicTimer lease_check_;
  sim::PeriodicTimer claim_retry_;
};

}  // namespace coop::groups
