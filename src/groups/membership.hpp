// Group membership with heartbeat failure detection and view changes.
//
// CSCW sessions are long-lived and people join, leave, crash and roam
// (§3.1's seamless transitions; §4.2.2's disconnection).  The membership
// service tracks who is currently in a session and publishes *views* —
// numbered membership snapshots — to every member.
//
// Architecture: a coordinator endpoint (typically co-located with the
// session's server object) accepts JOIN/LEAVE, expects periodic HEARTBEATs,
// and sweeps for members whose heartbeats stopped.  Views are disseminated
// reliably: each member acks the view id it has installed, and the sweep
// re-sends the current view to anyone behind — so a lost VIEW datagram only
// delays, never loses, a membership change.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::groups {

/// A numbered membership snapshot.
struct View {
  std::uint64_t id = 0;
  std::vector<net::Address> members;

  [[nodiscard]] bool contains(const net::Address& a) const {
    for (const auto& m : members)
      if (m == a) return true;
    return false;
  }
};

/// Tuning for both sides of the membership protocol.
struct MembershipConfig {
  sim::Duration heartbeat_period = sim::msec(100);
  /// A member is suspected failed after this long without a heartbeat.
  sim::Duration failure_timeout = sim::msec(350);
  /// Coordinator sweep cadence (failure checks + view re-send).
  sim::Duration sweep_period = sim::msec(100);
  /// Member re-sends JOIN at this cadence until a view containing it
  /// arrives (repairs a lost JOIN datagram, and re-admits a member that a
  /// lossy link caused the failure detector to evict).
  sim::Duration join_retry_period = sim::msec(200);
};

/// Coordinator side: owns the authoritative view.
class MembershipCoordinator : public net::Endpoint {
 public:
  MembershipCoordinator(net::Network& net, net::Address self,
                        MembershipConfig config = {});
  ~MembershipCoordinator() override;

  MembershipCoordinator(const MembershipCoordinator&) = delete;
  MembershipCoordinator& operator=(const MembershipCoordinator&) = delete;

  [[nodiscard]] const View& view() const noexcept { return view_; }

  /// Observer invoked on every view change (for session logic co-located
  /// with the coordinator).
  void on_view_change(std::function<void(const View&)> fn) {
    observer_ = std::move(fn);
  }

  /// Administratively evicts a member (e.g. access-control revocation).
  /// The member is also banned: its join/heartbeat traffic is ignored
  /// until readmit() lifts the ban.
  void evict(const net::Address& member);

  /// Lifts an administrative ban; the member may join again.
  void readmit(const net::Address& member) { banned_.erase(member); }

  void on_message(const net::Message& msg) override;

  [[nodiscard]] std::uint64_t view_changes() const noexcept {
    return view_.id;
  }

  /// Members removed by the failure detector so far.
  [[nodiscard]] std::uint64_t failures_detected() const noexcept {
    return failures_->value();
  }

 private:
  struct MemberState {
    sim::TimePoint last_heartbeat = 0;
    std::uint64_t acked_view = 0;
  };

  void bump_view();
  void send_view(const net::Address& to);
  void sweep();

  net::Network& net_;
  net::Address self_;
  MembershipConfig config_;
  View view_;
  std::map<net::Address, MemberState> states_;
  std::set<net::Address> banned_;
  std::function<void(const View&)> observer_;
  // Registry-owned ("groups.membership.<node>:<port>.*").
  util::Counter* joins_;
  util::Counter* leaves_;
  util::Counter* failures_;
  util::Counter* evictions_;
  util::Counter* views_;
  sim::PeriodicTimer sweeper_;
};

/// Member side: joins, heartbeats, installs views.
class MembershipMember : public net::Endpoint {
 public:
  MembershipMember(net::Network& net, net::Address self,
                   net::Address coordinator, MembershipConfig config = {});
  ~MembershipMember() override;

  MembershipMember(const MembershipMember&) = delete;
  MembershipMember& operator=(const MembershipMember&) = delete;

  /// Announces this member and starts heartbeating.
  void join();

  /// Gracefully departs (stops heartbeating; coordinator removes us).
  void leave();

  /// Callback invoked whenever a new view is installed.
  void on_view(std::function<void(const View&)> fn) {
    on_view_ = std::move(fn);
  }

  /// Most recently installed view, if any.
  [[nodiscard]] const std::optional<View>& view() const noexcept {
    return view_;
  }

  [[nodiscard]] bool joined() const noexcept { return joined_; }

  void on_message(const net::Message& msg) override;

 private:
  void send_simple(std::uint8_t type);

  net::Network& net_;
  net::Address self_;
  net::Address coordinator_;
  MembershipConfig config_;
  bool joined_ = false;
  std::optional<View> view_;
  std::function<void(const View&)> on_view_;
  sim::PeriodicTimer heartbeat_;
  sim::PeriodicTimer join_retry_;
};

}  // namespace coop::groups
