#include "groups/group_channel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/codec.hpp"

namespace coop::groups {

namespace {

/// Pending-table key: per-sender sequence numbers are unique, so the pair
/// (sender slot, seq) identifies any message in the group.
std::uint64_t pending_key(std::size_t sender, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(sender) << 40) | seq;
}

}  // namespace

GroupChannel::GroupChannel(net::Network& net, net::Address self,
                           net::McastId group, ChannelConfig config)
    : net_(net), self_(self), group_(group), config_(config) {
  net_.attach(self_, *this);
  net_.mcast_join(group_, self_);
  // stats_ stays the hot storage; the registry polls it through views.
  metric_prefix_ = "groups.channel." + std::to_string(self_.node) + ":" +
                   std::to_string(self_.port) + ".";
  auto& m = net_.obs().metrics;
  m.expose(metric_prefix_ + "broadcasts",
           [this] { return static_cast<double>(stats_.broadcasts); });
  m.expose(metric_prefix_ + "delivered",
           [this] { return static_cast<double>(stats_.delivered); });
  m.expose(metric_prefix_ + "duplicates",
           [this] { return static_cast<double>(stats_.duplicates); });
  m.expose(metric_prefix_ + "retransmits",
           [this] { return static_cast<double>(stats_.retransmits); });
  m.expose(metric_prefix_ + "gave_up",
           [this] { return static_cast<double>(stats_.gave_up); });
  m.expose(metric_prefix_ + "held_back_max",
           [this] { return static_cast<double>(stats_.held_back_max); });
  m.expose(metric_prefix_ + "held_back_shed",
           [this] { return static_cast<double>(stats_.held_back_shed); });
  m.expose(metric_prefix_ + "stash_shed",
           [this] { return static_cast<double>(stats_.stash_shed); });
  m.expose(metric_prefix_ + "expired_drops",
           [this] { return static_cast<double>(stats_.expired_drops); });
  m.expose(metric_prefix_ + "failover_lost",
           [this] { return static_cast<double>(stats_.failover_lost); });
  m.expose(metric_prefix_ + "failover_replayed",
           [this] { return static_cast<double>(stats_.failover_replayed); });
  m.expose(metric_prefix_ + "phantom_commits",
           [this] { return static_cast<double>(stats_.phantom_commits); });
  ts_delivered_ = net_.obs().series.series("group.delivered");
  prof_deliver_ = net_.obs().profiler.site("group.deliver",
                                           obs::Category::kGroup);
}

GroupChannel::~GroupChannel() {
  for (auto& [key, p] : pending_) {
    if (p.timer != sim::kInvalidEvent) net_.simulator().cancel(p.timer);
  }
  if (recover_timer_ != sim::kInvalidEvent)
    net_.simulator().cancel(recover_timer_);
  net_.obs().metrics.retire_polled(metric_prefix_);
  net_.mcast_leave(group_, self_);
  net_.detach(self_);
}

void GroupChannel::set_members(const std::vector<net::Address>& members) {
  members_ = members;
  alive_.assign(members_.size(), true);
  next_expected_.assign(members_.size(), 1);
  seen_.assign(members_.size(), {});
  next_req_.assign(members_.size(), 1);
  stashed_reqs_.assign(members_.size(), {});
  vclock_ = logical::VectorClock(members_.size());
  auto it = std::find(members_.begin(), members_.end(), self_);
  assert(it != members_.end() && "self must be a group member");
  self_index_ = static_cast<std::size_t>(it - members_.begin());
}

bool GroupChannel::is_sequencer() const noexcept {
  // The lowest-numbered live slot sequences; failure promotes the next.
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) return i == self_index_;
  }
  return false;
}

std::size_t GroupChannel::sequencer_slot() const {
  std::size_t slot = 0;
  while (slot < alive_.size() && !alive_[slot]) ++slot;
  return slot;
}

void GroupChannel::take_over_sequencing() {
  // Resume from what we have delivered ourselves: the contiguous prefix
  // of each sender's seen set.  The resync flag lets the first request
  // per sender jump over messages lost with the old sequencer.
  resync_ = true;
  next_total_seq_ = 1;
  for (std::size_t s = 0; s < seen_.size(); ++s) {
    std::uint64_t next = next_req_[s];
    while (seen_[s].count(next) != 0) ++next;
    next_req_[s] = next;
  }
  if (total_replay()) begin_recovery();
}

void GroupChannel::tail_push(std::uint32_t sender, std::uint64_t seq,
                             std::uint32_t epoch, std::uint64_t total,
                             sim::TimePoint sent_at,
                             const std::string& payload) {
  if (!total_replay() || config_.recovery_tail == 0) return;
  delivered_tail_.push_back(
      {sender, seq, epoch, total, sent_at, payload});
  while (delivered_tail_.size() > config_.recovery_tail)
    delivered_tail_.pop_front();
}

void GroupChannel::begin_recovery() {
  recovering_ = true;
  recovered_.clear();
  relay_replays_.clear();
  recover_await_.clear();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != self_index_ && alive_[i]) recover_await_.insert(i);
  }
  // Our own un-relayed broadcasts join the replay pool exactly like a
  // solicited member's would.
  for (const auto& [seq, rw] : relay_wait_) {
    relay_replays_.try_emplace(
        pending_key(self_index_, seq),
        ReplayReq{static_cast<std::uint32_t>(self_index_), seq, rw.sent_at,
                  rw.deadline, rw.payload});
  }
  recover_min_pos_ = {epoch_, next_expected_total_ - 1};
  recover_started_ = net_.simulator().now();
  net_.obs().tracer.event(
      recover_started_, obs::Category::kGroup, "failover_solicit",
      {{"slot", static_cast<double>(self_index_)},
       {"await", static_cast<double>(recover_await_.size())}});
  if (recover_await_.empty()) {
    finish_recovery();
    return;
  }
  send_solicits();
}

void GroupChannel::send_solicits() {
  util::Writer w;
  w.put(MsgType::kSolicit)
      .put(static_cast<std::uint32_t>(epoch_))
      .put(next_expected_total_ - 1);
  const util::Buf wire = w.take_buf();
  for (std::size_t slot : recover_await_) {
    net_.send({.src = self_, .dst = members_[slot], .payload = wire,
               .priority = config_.priority});
  }
  recover_timer_ = net_.simulator().schedule_after(
      config_.retransmit_timeout, [this] {
        recover_timer_ = sim::kInvalidEvent;
        if (!recovering_) return;
        if (net_.simulator().now() - recover_started_ >=
            config_.recovery_timeout) {
          // Some solicited member never answered (it likely died without
          // a view change reaching us yet): recover from what we have.
          net_.obs().tracer.event(
              net_.simulator().now(), obs::Category::kGroup,
              "failover_recovery_timeout",
              {{"unanswered", static_cast<double>(recover_await_.size())}});
          finish_recovery();
          return;
        }
        send_solicits();
      });
}

void GroupChannel::handle_solicit(const net::Message& msg) {
  if (!total_replay()) return;
  util::Reader r(msg.payload);
  r.get<MsgType>();
  const auto their_epoch = r.get<std::uint32_t>();
  const auto their_total = r.get<std::uint64_t>();
  if (r.failed()) return;
  // Answer with our delivered position, every tail entry the solicitor has
  // not itself delivered, and every own broadcast not yet relayed back to
  // us.  Responding is read-only: authority stays with the solicitor.
  util::Writer w;
  w.put(MsgType::kRecover)
      .put(static_cast<std::uint32_t>(self_index_))
      .put(static_cast<std::uint32_t>(epoch_))
      .put(next_expected_total_ - 1);
  std::uint32_t n_tail = 0;
  for (const TailEntry& e : delivered_tail_) {
    if (std::pair(e.epoch, e.total) > std::pair(their_epoch, their_total))
      ++n_tail;
  }
  w.put(n_tail);
  for (const TailEntry& e : delivered_tail_) {
    if (std::pair(e.epoch, e.total) <= std::pair(their_epoch, their_total))
      continue;
    w.put(e.sender).put(e.seq).put(e.epoch).put(e.total).put(e.sent_at);
    w.put_string(e.payload);
  }
  w.put(static_cast<std::uint32_t>(relay_wait_.size()));
  for (const auto& [seq, rw] : relay_wait_) {
    w.put(seq).put(rw.sent_at).put(rw.deadline);
    w.put_string(rw.payload);
  }
  net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf(),
             .priority = config_.priority});
}

void GroupChannel::handle_recover(const net::Message& msg) {
  if (!recovering_) return;  // late/duplicate summary
  util::Reader r(msg.payload);
  r.get<MsgType>();
  const auto responder = r.get<std::uint32_t>();
  const auto their_epoch = r.get<std::uint32_t>();
  const auto their_total = r.get<std::uint64_t>();
  const auto n_tail = r.get<std::uint32_t>();
  if (r.failed() || responder >= members_.size()) return;
  for (std::uint32_t i = 0; i < n_tail && !r.failed(); ++i) {
    TailEntry e;
    e.sender = r.get<std::uint32_t>();
    e.seq = r.get<std::uint64_t>();
    e.epoch = r.get<std::uint32_t>();
    e.total = r.get<std::uint64_t>();
    e.sent_at = r.get<sim::TimePoint>();
    e.payload = r.get_string();
    if (r.failed() || e.sender >= members_.size()) break;
    // Keep the highest-position copy: after chained failovers the latest
    // epoch's slot is the binding one.
    auto [it, inserted] =
        recovered_.try_emplace(pending_key(e.sender, e.seq), e);
    if (!inserted &&
        std::pair(e.epoch, e.total) >
            std::pair(it->second.epoch, it->second.total)) {
      it->second = std::move(e);
    }
  }
  const auto n_relay = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_relay && !r.failed(); ++i) {
    ReplayReq rep;
    rep.sender = responder;
    rep.seq = r.get<std::uint64_t>();
    rep.sent_at = r.get<sim::TimePoint>();
    rep.deadline = r.get<sim::TimePoint>();
    rep.payload = r.get_string();
    if (r.failed()) break;
    relay_replays_.try_emplace(pending_key(responder, rep.seq),
                               std::move(rep));
  }
  if (recover_await_.erase(responder) == 0) return;  // duplicate summary
  recover_min_pos_ =
      std::min(recover_min_pos_, std::pair(their_epoch, their_total));
  if (recover_await_.empty()) finish_recovery();
}

void GroupChannel::finish_recovery() {
  recovering_ = false;
  if (recover_timer_ != sim::kInvalidEvent) {
    net_.simulator().cancel(recover_timer_);
    recover_timer_ = sim::kInvalidEvent;
  }
  // Our own tail is a summary like any other (merged late so deliveries
  // that landed during the solicit round are included).
  for (const TailEntry& e : delivered_tail_) {
    auto [it, inserted] =
        recovered_.try_emplace(pending_key(e.sender, e.seq), e);
    if (!inserted &&
        std::pair(e.epoch, e.total) >
            std::pair(it->second.epoch, it->second.total)) {
      it->second = e;
    }
  }
  // Phase 1: re-sequence the recovered suffix — everything some survivor
  // delivered beyond the *minimum* live prefix — in the old global order,
  // so the new epoch's order extends every survivor's delivered prefix.
  std::vector<const TailEntry*> suffix;
  for (const auto& [key, e] : recovered_) {
    if (std::pair(e.epoch, e.total) > recover_min_pos_)
      suffix.push_back(&e);
  }
  std::sort(suffix.begin(), suffix.end(),
            [](const TailEntry* a, const TailEntry* b) {
              return std::pair(a->epoch, a->total) <
                     std::pair(b->epoch, b->total);
            });
  std::uint64_t resequenced = 0;
  for (const TailEntry* e : suffix) {
    resequence(e->sender, e->seq, e->sent_at, e->payload);
    ++resequenced;
  }
  // Phase 2: replay acked-but-unrelayed requests (the loss window) in
  // deterministic (sender, seq) order — map order already is that.
  std::uint64_t replayed = 0;
  for (auto& [key, rep] : relay_replays_) {
    if (recovered_.count(key) != 0) continue;       // relayed after all
    if (seen_[rep.sender].count(rep.seq) != 0) continue;  // already placed
    if (rep.deadline > 0 && net_.simulator().now() >= rep.deadline) {
      ++stats_.expired_drops;
      seen_[rep.sender].insert(rep.seq);
      next_req_[rep.sender] = std::max(next_req_[rep.sender], rep.seq + 1);
      continue;
    }
    resequence(rep.sender, rep.seq, rep.sent_at, std::move(rep.payload));
    ++stats_.failover_replayed;
    ++replayed;
  }
  recovered_.clear();
  relay_replays_.clear();
  net_.obs().tracer.event(
      net_.simulator().now(), obs::Category::kGroup, "failover_recovered",
      {{"slot", static_cast<double>(self_index_)},
       {"resequenced", static_cast<double>(resequenced)},
       {"replayed", static_cast<double>(replayed)}});
  // Phase 3: fresh requests that arrived (and were stashed) during the
  // round.  Anything the replay already placed is pruned first so the
  // stash cannot re-sequence it.
  for (std::size_t s = 0; s < members_.size(); ++s) {
    auto& stash = stashed_reqs_[s];
    for (auto it = stash.begin();
         it != stash.end() && it->first < next_req_[s];) {
      it = stash.erase(it);
    }
    sequence_ready_reqs(s);
  }
}

void GroupChannel::resequence(std::uint32_t sender, std::uint64_t seq,
                              sim::TimePoint sent_at, std::string payload) {
  obs::Tracer& tracer = net_.obs().tracer;
  next_req_[sender] = std::max(next_req_[sender], seq + 1);
  const bool already_delivered_here = seen_[sender].count(seq) != 0;
  seen_[sender].insert(seq);
  const std::uint64_t total_seq = next_total_seq_++;
  const util::Buf wire = encode_data(sender, seq, total_seq, sent_at,
                                     logical::VectorClock(), payload);
  send_data(pending_key(sender, seq), wire, obs::CausalContext{}, 0);
  epoch_ = static_cast<std::uint32_t>(self_index_);
  next_expected_total_ = total_seq + 1;
  tail_push(sender, seq, epoch_, total_seq, sent_at, payload);
  if (already_delivered_here) {
    ++stats_.phantom_commits;  // slot committed; app already saw it
    return;
  }
  deliver_now({.sender = sender,
               .sender_addr = members_[sender],
               .seq = seq,
               .total_seq = total_seq,
               .payload = std::move(payload),
               .sent_at = sent_at,
               .ctx = {}});
}

util::Buf GroupChannel::encode_data(std::size_t sender, std::uint64_t seq,
                                      std::uint64_t total_seq,
                                      sim::TimePoint sent_at,
                                      const logical::VectorClock& vc,
                                      const std::string& payload) const {
  util::Writer w;
  w.put(MsgType::kData)
      .put(static_cast<std::uint32_t>(sender))
      .put(seq)
      .put(total_seq)
      .put(static_cast<std::uint32_t>(self_index_))  // sequencing epoch
      .put(sent_at);
  vc.encode(w);
  w.put_string(payload);
  return w.take_buf();
}

std::uint64_t GroupChannel::broadcast(std::string payload,
                                      const obs::CausalContext& parent) {
  assert(!members_.empty() && "set_members before broadcast");
  const std::uint64_t seq = next_seq_++;
  ++stats_.broadcasts;
  const sim::TimePoint now = net_.simulator().now();
  obs::Tracer& tracer = net_.obs().tracer;
  // The broadcast is the causal root of every member's delivery (or a
  // child of the caller's context when the broadcast continues a trace).
  const obs::CausalContext bctx = parent.valid()
                                      ? parent.child(tracer.mint_id())
                                      : tracer.begin_trace();
  tracer.event(now, obs::Category::kGroup, "broadcast", bctx,
               {{"sender", static_cast<double>(self_index_)},
                {"seq", static_cast<double>(seq)}});
  // Deadline propagation: stamped into the wire header so the sequencer
  // can drop the request once expired, and onto Pending so retransmission
  // stops when the work is pointless.
  const sim::TimePoint deadline =
      config_.broadcast_deadline > 0 ? now + config_.broadcast_deadline : 0;

  // A recovering sequencer routes its own broadcasts through the ordinary
  // request path (to itself) so they stash and sequence after the replayed
  // suffix, not before it.
  if (config_.ordering == Ordering::kTotal &&
      (!is_sequencer() || recovering_)) {
    // Ship an ordering request to the sequencer; our message comes back to
    // us (and everyone) inside the sequencer's totally ordered stream.
    // Retain the payload until we deliver it ourselves: if the sequencer
    // dies after acking but before relaying, the promoted sequencer
    // replays it from this buffer (with replay disabled the buffer only
    // quantifies the loss window).
    relay_wait_[seq] = {now, deadline, payload, bctx};
    util::Writer w;
    w.put(MsgType::kTotalReq)
        .put(static_cast<std::uint32_t>(self_index_))
        .put(seq)
        .put(now)
        .put_string(payload);
    const util::Buf wire = w.take_buf();

    const std::size_t seq_slot = sequencer_slot();
    Pending p;
    p.wire = wire;
    p.awaiting = {seq_slot};
    p.is_total_req = true;
    p.deadline = deadline;
    p.ctx = bctx;
    pending_[pending_key(self_index_, seq)] = std::move(p);
    net_.send({.src = self_, .dst = members_[seq_slot], .payload = wire,
               .deadline = deadline, .priority = config_.priority,
               .ctx = bctx});
    arm_retransmit(pending_key(self_index_, seq));
    return seq;
  }

  std::uint64_t total_seq = 0;
  if (config_.ordering == Ordering::kCausal) vclock_.tick(self_index_);
  if (config_.ordering == Ordering::kTotal) total_seq = next_total_seq_++;

  const util::Buf wire =
      encode_data(self_index_, seq, total_seq, now, vclock_, payload);
  send_data(pending_key(self_index_, seq), wire, bctx, deadline);

  // Local delivery.  kTotal delivers at sequencing time (which, for the
  // sequencer itself, is right now); others echo immediately.
  if (config_.ordering == Ordering::kTotal) {
    seen_[self_index_].insert(seq);
    epoch_ = static_cast<std::uint32_t>(self_index_);
    next_expected_total_ = total_seq + 1;
    tail_push(static_cast<std::uint32_t>(self_index_), seq, epoch_, total_seq,
              now, payload);
    deliver_now({.sender = self_index_,
                 .sender_addr = self_,
                 .seq = seq,
                 .total_seq = total_seq,
                 .payload = std::move(payload),
                 .sent_at = now,
                 .ctx = bctx.child(tracer.mint_id())});
  } else if (config_.local_echo) {
    seen_[self_index_].insert(seq);
    if (config_.ordering == Ordering::kFifo)
      next_expected_[self_index_] = seq + 1;
    deliver_now({.sender = self_index_,
                 .sender_addr = self_,
                 .seq = seq,
                 .total_seq = 0,
                 .payload = std::move(payload),
                 .sent_at = now,
                 .ctx = bctx.child(tracer.mint_id())});
  }
  return seq;
}

void GroupChannel::send_data(std::uint64_t key, const util::Buf& wire,
                             const obs::CausalContext& ctx,
                             sim::TimePoint deadline) {
  Pending p;
  p.wire = wire;
  p.deadline = deadline;
  p.ctx = ctx;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i != self_index_ && alive_[i]) p.awaiting.insert(i);
  }
  if (p.awaiting.empty()) return;  // singleton group: nothing on the wire
  pending_[key] = std::move(p);
  // One context for the whole multicast; the network mints a per-copy hop
  // child, so each member's delivery still has a distinct span.
  net_.multicast(group_, {.src = self_, .dst = {}, .payload = wire,
                          .deadline = deadline,
                          .priority = config_.priority, .ctx = ctx});
  arm_retransmit(key);
}

void GroupChannel::arm_retransmit(std::uint64_t key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  it->second.timer = net_.simulator().schedule_after(
      config_.retransmit_timeout, [this, key] {
        auto pit = pending_.find(key);
        if (pit == pending_.end()) return;
        Pending& p = pit->second;
        p.timer = sim::kInvalidEvent;
        obs::Tracer& tracer = net_.obs().tracer;
        // Retries never extend past the deadline: once the work is
        // pointless, stop paying for it (members that missed the frame
        // would only have dropped it expired anyway).
        if (p.deadline > 0 && net_.simulator().now() >= p.deadline) {
          ++stats_.expired_abandoned;
          tracer.event(net_.simulator().now(), obs::Category::kGroup,
                       "expired",
                       p.ctx.valid() ? p.ctx.child(tracer.mint_id())
                                     : obs::CausalContext{},
                       {{"key", static_cast<double>(key)}});
          if (p.is_total_req)
            relay_wait_.erase(key & ((std::uint64_t{1} << 40) - 1));
          pending_.erase(pit);
          return;
        }
        if (++p.retries > config_.max_retransmits) {
          ++stats_.gave_up;
          tracer.event(net_.simulator().now(), obs::Category::kGroup,
                       "give_up",
                       p.ctx.valid() ? p.ctx.child(tracer.mint_id())
                                     : obs::CausalContext{},
                       {{"key", static_cast<double>(key)}});
          if (p.is_total_req)
            relay_wait_.erase(key & ((std::uint64_t{1} << 40) - 1));
          pending_.erase(pit);
          return;
        }
        // Unicast retransmission to just the members still missing.  Each
        // resend is a child of the broadcast span; `waited` is the ack
        // timeout that lapsed first — the critical-path "retry" bucket.
        for (std::size_t slot : p.awaiting) {
          if (!alive_[slot]) continue;
          ++stats_.retransmits;
          const obs::CausalContext rctx =
              p.ctx.valid() ? p.ctx.child(tracer.mint_id())
                            : obs::CausalContext{};
          tracer.event(
              net_.simulator().now(), obs::Category::kGroup, "retransmit",
              rctx,
              {{"key", static_cast<double>(key)},
               {"to", static_cast<double>(slot)},
               {"waited",
                static_cast<double>(config_.retransmit_timeout)}});
          net_.send({.src = self_, .dst = members_[slot], .payload = p.wire,
                     .deadline = p.deadline, .priority = config_.priority,
                     .ctx = rctx});
        }
        arm_retransmit(key);
      });
}

void GroupChannel::mark_failed(const net::Address& member) {
  auto it = std::find(members_.begin(), members_.end(), member);
  if (it == members_.end()) return;
  const auto slot = static_cast<std::size_t>(it - members_.begin());
  if (!alive_[slot]) return;
  const bool was_sequencer = slot == sequencer_slot();
  alive_[slot] = false;
  const std::size_t new_seq_slot = sequencer_slot();

  for (auto pit = pending_.begin(); pit != pending_.end();) {
    Pending& p = pit->second;
    if (p.is_total_req && p.awaiting.count(slot) != 0 && was_sequencer) {
      // Re-route the ordering request to the promoted sequencer.
      p.awaiting.erase(slot);
      if (new_seq_slot < members_.size() && new_seq_slot != self_index_) {
        p.awaiting.insert(new_seq_slot);
        net_.send({.src = self_, .dst = members_[new_seq_slot],
                   .payload = p.wire, .ctx = p.ctx});
        ++pit;
        continue;
      }
    } else {
      p.awaiting.erase(slot);
    }
    if (p.awaiting.empty()) {
      if (p.timer != sim::kInvalidEvent)
        net_.simulator().cancel(p.timer);
      pit = pending_.erase(pit);
    } else {
      ++pit;
    }
  }

  if (config_.ordering == Ordering::kTotal && was_sequencer &&
      !config_.failover_replay) {
    // Legacy failover: an own broadcast the dead sequencer acked (no
    // pending left) but that never came back to us is gone for good —
    // nobody replays it.  Quantify the loss window.
    for (auto it = relay_wait_.begin(); it != relay_wait_.end();) {
      if (pending_.count(pending_key(self_index_, it->first)) == 0) {
        ++stats_.failover_lost;
        net_.obs().tracer.event(net_.simulator().now(),
                                obs::Category::kGroup, "failover_lost",
                                {{"sender",
                                  static_cast<double>(self_index_)},
                                 {"seq", static_cast<double>(it->first)}});
        it = relay_wait_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // A member dying mid-recovery will never answer the solicit.
  if (recovering_ && recover_await_.erase(slot) > 0 &&
      recover_await_.empty()) {
    finish_recovery();
    return;
  }

  if (config_.ordering == Ordering::kTotal && was_sequencer &&
      is_sequencer()) {
    take_over_sequencing();
    // Requests that reached us before the promotion may be stashed
    // already: sequence whatever is now eligible (with replay enabled the
    // recovery round sequences them when it finishes instead).
    if (!recovering_) {
      for (std::size_t s = 0; s < members_.size(); ++s)
        sequence_ready_reqs(s);
    }
  }
}

void GroupChannel::on_message(const net::Message& msg) {
  util::Reader r(msg.payload);
  const auto type = r.get<MsgType>();
  if (r.failed()) return;
  switch (type) {
    case MsgType::kData:
      handle_data(msg);
      break;
    case MsgType::kAck:
      handle_ack(msg);
      break;
    case MsgType::kTotalReq:
      handle_total_req(msg);
      break;
    case MsgType::kSolicit:
      handle_solicit(msg);
      break;
    case MsgType::kRecover:
      handle_recover(msg);
      break;
  }
}

void GroupChannel::handle_ack(const net::Message& msg) {
  util::Reader r(msg.payload);
  r.get<MsgType>();
  const auto sender = r.get<std::uint32_t>();
  const auto seq = r.get<std::uint64_t>();
  const auto acker = r.get<std::uint32_t>();
  if (r.failed()) return;
  auto it = pending_.find(pending_key(sender, seq));
  if (it == pending_.end()) return;
  net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                          "ack", msg.ctx,
                          {{"seq", static_cast<double>(seq)},
                           {"from", static_cast<double>(acker)}});
  it->second.awaiting.erase(acker);
  if (it->second.awaiting.empty()) {
    if (it->second.timer != sim::kInvalidEvent)
      net_.simulator().cancel(it->second.timer);
    pending_.erase(it);
  }
}

void GroupChannel::handle_total_req(const net::Message& msg) {
  util::Reader r(msg.payload);
  r.get<MsgType>();
  const auto sender = r.get<std::uint32_t>();
  const auto seq = r.get<std::uint64_t>();
  const auto sent_at = r.get<sim::TimePoint>();
  std::string payload = r.get_string();
  if (r.failed() || sender >= members_.size()) return;

  // A request that reaches a non-sequencer (the slot demoted, or the
  // sender's sequencer view is ahead of ours) is dropped *unacked*: an
  // ack from a node that will never sequence the message converts the
  // sender's retransmission — its only recovery path — into silence.
  if (!is_sequencer()) {
    net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                            "req_wrong_sequencer", msg.ctx,
                            {{"sender", static_cast<double>(sender)},
                             {"seq", static_cast<double>(seq)}});
    return;
  }

  // Admission control at the sequencer: a new request that would grow the
  // stash past its cap is dropped *before* the ack, so the originator's
  // retransmission redelivers it later — backpressure instead of an
  // unbounded queue at the ordering bottleneck.
  const bool fresh = seq >= next_req_[sender] &&
                     stashed_reqs_[sender].count(seq) == 0;
  if (fresh && config_.sequencer_stash_cap > 0 &&
      stashed_reqs_[sender].size() >= config_.sequencer_stash_cap) {
    ++stats_.stash_shed;
    net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                            "stash_shed", msg.ctx,
                            {{"sender", static_cast<double>(sender)},
                             {"seq", static_cast<double>(seq)}});
    return;
  }

  // Ack the request so the originator stops retransmitting.  The ack rides
  // the request's context so it links back to the attempt that arrived.
  util::Writer w;
  w.put(MsgType::kAck).put(sender).put(seq).put(
      static_cast<std::uint32_t>(self_index_));
  net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf(),
             .ctx = msg.ctx});

  if (!fresh) {
    ++stats_.duplicates;  // retransmitted request already sequenced/stashed
    return;
  }
  // Stash, then sequence the sender's requests strictly in seq order so
  // total order preserves each sender's FIFO order even if the network
  // delivered the requests out of order.  The header deadline travels
  // with the stash so expiry is judged at sequencing time.  A recovering
  // sequencer only stashes: fresh requests sequence after the replayed
  // suffix, when the recovery round closes.
  stashed_reqs_[sender][seq] = {sent_at, std::move(payload), msg.deadline,
                                msg.ctx};
  if (!recovering_) sequence_ready_reqs(sender);
}

void GroupChannel::sequence_ready_reqs(std::size_t sender) {
  if (recovering_) return;  // replay first; fresh requests wait in the stash
  auto& stash = stashed_reqs_[sender];
  // Post-failover resync: the first request from a sender may jump over
  // messages lost with the old sequencer (one jump per sender).
  if (resync_ && !stash.empty() && stash.begin()->first > next_req_[sender]) {
    next_req_[sender] = stash.begin()->first;
  }
  obs::Tracer& tracer = net_.obs().tracer;
  for (auto it = stash.find(next_req_[sender]); it != stash.end();
       it = stash.find(next_req_[sender])) {
    const std::uint64_t seq = it->first;
    StashedReq req = std::move(it->second);
    stash.erase(it);
    ++next_req_[sender];
    seen_[sender].insert(seq);
    // Expired on dequeue: the deadline passed while the request sat in
    // the stash, so sequencing it would multicast work every member will
    // only throw away.  The request was already acked and is recorded
    // seen with the cursor advanced past it, so skipping assigns it no
    // slot in the total order and stalls nobody (receivers track
    // total_seq contiguity, not per-sender seq).
    if (req.deadline > 0 && net_.simulator().now() >= req.deadline) {
      ++stats_.expired_drops;
      net_.obs().metrics.counter("rpc.expired_drops").inc();
      tracer.event(net_.simulator().now(), obs::Category::kGroup, "expired",
                   req.ctx.valid() ? req.ctx.child(tracer.mint_id())
                                   : obs::CausalContext{},
                   {{"sender", static_cast<double>(sender)},
                    {"seq", static_cast<double>(seq)}});
      continue;
    }
    const std::uint64_t total_seq = next_total_seq_++;
    // The sequencer's relay continues the originator's trace: the
    // sequencing decision is a child of the arriving request, and the
    // re-multicast + local delivery are children of the decision.
    const obs::CausalContext sctx =
        req.ctx.valid() ? req.ctx.child(tracer.mint_id())
                        : obs::CausalContext{};
    tracer.event(net_.simulator().now(), obs::Category::kGroup, "sequence",
                 sctx,
                 {{"sender", static_cast<double>(sender)},
                  {"seq", static_cast<double>(seq)},
                  {"total", static_cast<double>(total_seq)}});
    const util::Buf wire = encode_data(sender, seq, total_seq, req.sent_at,
                                         logical::VectorClock(), req.payload);
    send_data(pending_key(sender, seq), wire, sctx, req.deadline);
    // The sequencer's own delivery happens at sequencing time, keeping it
    // consistent with the global order it just defined.
    epoch_ = static_cast<std::uint32_t>(self_index_);
    next_expected_total_ = total_seq + 1;
    tail_push(static_cast<std::uint32_t>(sender), seq, epoch_, total_seq,
              req.sent_at, req.payload);
    deliver_now({.sender = sender,
                 .sender_addr = members_[sender],
                 .seq = seq,
                 .total_seq = total_seq,
                 .payload = std::move(req.payload),
                 .sent_at = req.sent_at,
                 .ctx = sctx.valid() ? sctx.child(tracer.mint_id())
                                     : obs::CausalContext{}});
  }
}

void GroupChannel::handle_data(const net::Message& msg) {
  util::Reader r(msg.payload);
  r.get<MsgType>();
  const auto sender = r.get<std::uint32_t>();
  const auto seq = r.get<std::uint64_t>();
  const auto total_seq = r.get<std::uint64_t>();
  const auto epoch = r.get<std::uint32_t>();
  const auto sent_at = r.get<sim::TimePoint>();
  logical::VectorClock vc = logical::VectorClock::decode(r);
  std::string payload = r.get_string();
  if (r.failed() || sender >= members_.size()) return;

  HeldBack hb;
  hb.delivery = {.sender = sender,
                 .sender_addr = members_[sender],
                 .seq = seq,
                 .total_seq = total_seq,
                 .payload = std::move(payload),
                 .sent_at = sent_at,
                 // Even if delivery is deferred in the hold-back queue, the
                 // chain stays anchored to the network arrival.
                 .ctx = msg.ctx.valid()
                            ? msg.ctx.child(net_.obs().tracer.mint_id())
                            : obs::CausalContext{}};
  hb.vclock = std::move(vc);
  hb.epoch = epoch;

  // Hold-back bound: a fresh arrival that cannot be delivered yet while
  // the queue is at capacity is shed *before* being acked or recorded
  // seen — the ack would stop the sender retransmitting and the dedupe
  // would block redelivery, losing the message forever.  Unacked, the
  // sender's retransmission redelivers it once the queue has drained.
  if (config_.max_holdback > 0 && holdback_.size() >= config_.max_holdback &&
      seen_[sender].count(seq) == 0 && !deliverable_now(hb)) {
    ++stats_.held_back_shed;
    net_.obs().tracer.event(net_.simulator().now(), obs::Category::kGroup,
                            "holdback_shed", msg.ctx,
                            {{"sender", static_cast<double>(sender)},
                             {"seq", static_cast<double>(seq)}});
    return;
  }

  // Always ack — the original ack may have been the lost datagram.  The
  // ack goes to whoever (re)transmitted this copy: originator or sequencer.
  util::Writer w;
  w.put(MsgType::kAck).put(sender).put(seq).put(
      static_cast<std::uint32_t>(self_index_));
  net_.send({.src = self_, .dst = msg.src, .payload = w.take_buf(),
             .ctx = msg.ctx});

  if (total_replay()) {
    // Replay mode dedupes on *delivery position*, not receipt: a
    // resequenced copy of a message this member already delivered must
    // still occupy its new slot in the total order (so later messages can
    // flush) without reaching the application twice — it commits as a
    // phantom.  Any copy at a position we committed past is a duplicate.
    if (std::pair(epoch, total_seq) <
        std::pair(epoch_, next_expected_total_)) {
      ++stats_.duplicates;
      return;
    }
    hb.phantom = seen_[sender].count(seq) != 0;
    // One queued copy per message: a newer-epoch copy supersedes a held
    // stale-epoch one; an equal-position copy is a retransmission.
    for (auto it = holdback_.begin(); it != holdback_.end(); ++it) {
      if (it->delivery.sender != hb.delivery.sender ||
          it->delivery.seq != hb.delivery.seq)
        continue;
      if (std::pair(it->epoch, it->delivery.total_seq) >=
          std::pair(hb.epoch, hb.delivery.total_seq)) {
        ++stats_.duplicates;
        return;
      }
      holdback_.erase(it);
      break;
    }
    try_deliver(std::move(hb));
    return;
  }

  if (!seen_[sender].insert(seq).second) {
    ++stats_.duplicates;
    return;
  }

  // Total order: a message sequenced in an epoch older than the one we
  // have progressed past can never be delivered consistently — drop it.
  if (config_.ordering == Ordering::kTotal && epoch < epoch_) {
    ++stats_.duplicates;
    return;
  }

  try_deliver(std::move(hb));
}

bool GroupChannel::deliverable_now(const HeldBack& hb) const {
  const std::size_t s = hb.delivery.sender;
  switch (config_.ordering) {
    case Ordering::kUnordered:
      return true;
    case Ordering::kFifo:
      return hb.delivery.seq == next_expected_[s];
    case Ordering::kCausal:
      return vclock_.deliverable_from(hb.vclock, s);
    case Ordering::kTotal:
      return (hb.epoch == epoch_ &&
              hb.delivery.total_seq == next_expected_total_) ||
             (hb.epoch > epoch_ && hb.delivery.total_seq == 1);
  }
  return false;
}

void GroupChannel::commit_order(const HeldBack& hb) {
  switch (config_.ordering) {
    case Ordering::kFifo:
      next_expected_[hb.delivery.sender] = hb.delivery.seq + 1;
      break;
    case Ordering::kCausal:
      vclock_.merge(hb.vclock);
      break;
    case Ordering::kTotal:
      if (total_replay() && hb.epoch != epoch_) {
        // Epoch transition: copies sequenced in superseded epochs can
        // never be delivered consistently any more.
        std::erase_if(holdback_, [&](const HeldBack& h) {
          return h.epoch < hb.epoch;
        });
      }
      epoch_ = hb.epoch;
      next_expected_total_ = hb.delivery.total_seq + 1;
      break;
    case Ordering::kUnordered:
      break;
  }
}

void GroupChannel::try_deliver(HeldBack hb) {
  if (!deliverable_now(hb)) {
    holdback_.push_back(std::move(hb));
    stats_.held_back_max =
        std::max<std::uint64_t>(stats_.held_back_max, holdback_.size());
    return;
  }
  // Commit the ordering state, deliver, then drain anything unblocked.
  commit_order(hb);
  tail_push(static_cast<std::uint32_t>(hb.delivery.sender), hb.delivery.seq,
            hb.epoch, hb.delivery.total_seq, hb.delivery.sent_at,
            hb.delivery.payload);
  if (hb.phantom) {
    ++stats_.phantom_commits;
  } else {
    deliver_now(hb.delivery);
  }
  flush_holdback();
}

void GroupChannel::flush_holdback() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = holdback_.begin(); it != holdback_.end(); ++it) {
      if (!deliverable_now(*it)) continue;
      HeldBack hb = std::move(*it);
      holdback_.erase(it);
      commit_order(hb);
      tail_push(static_cast<std::uint32_t>(hb.delivery.sender),
                hb.delivery.seq, hb.epoch, hb.delivery.total_seq,
                hb.delivery.sent_at, hb.delivery.payload);
      if (hb.phantom) {
        ++stats_.phantom_commits;
      } else {
        deliver_now(hb.delivery);
      }
      progress = true;
      break;  // iterator invalidated; rescan
    }
  }
}

void GroupChannel::deliver_now(const Delivery& d) {
  if (config_.ordering == Ordering::kTotal) {
    // Our own broadcast came back around the sequencer: the relay is
    // complete and the retained payload can go.
    if (d.sender == self_index_) relay_wait_.erase(d.seq);
    // Replay mode marks messages seen at *delivery* so a resequenced copy
    // is recognizable as a phantom rather than silently deduped.
    if (total_replay()) seen_[d.sender].insert(d.seq);
  }
  ++stats_.delivered;
  net_.obs().series.count(ts_delivered_, net_.simulator().now());
  // Span covering broadcast -> application delivery, i.e. the end-to-end
  // ordering+reliability latency the experiments measure.
  net_.obs().tracer.span(d.sent_at, net_.simulator().now(),
                         obs::Category::kGroup, "deliver", d.ctx,
                         {{"sender", static_cast<double>(d.sender)},
                          {"seq", static_cast<double>(d.seq)}});
  if (deliver_) {
    obs::ProfScope prof(net_.obs().profiler, prof_deliver_);
    deliver_(d);
  }
}

}  // namespace coop::groups
