#include "mobile/share_server.hpp"

#include <utility>
#include <vector>

#include "util/codec.hpp"

namespace coop::mobile {

ShareServer::ShareServer(net::Network& net, net::Address self)
    : server_(net, self) {
  server_.register_method("read", [this](const std::string& b) {
    return handle_read(b);
  });
  server_.register_method("write", [this](const std::string& b) {
    return handle_write(b);
  });
  server_.register_method("hoard", [this](const std::string& b) {
    return handle_hoard(b);
  });
  server_.register_method("bulk", [this](const std::string& b) {
    return handle_bulk(b);
  });
}

rpc::HandlerResult ShareServer::handle_read(const std::string& body) {
  util::Reader r(body);
  const std::string key = r.get_string();
  if (r.failed()) return rpc::HandlerResult::error("bad read");
  util::Writer w;
  const auto value = store_.read(key);
  w.put(value.has_value());
  w.put_string(value.value_or(""));
  w.put(store_.version(key));
  return rpc::HandlerResult::success(w.take());
}

rpc::HandlerResult ShareServer::handle_write(const std::string& body) {
  util::Reader r(body);
  const std::string key = r.get_string();
  std::string value = r.get_string();
  if (r.failed()) return rpc::HandlerResult::error("bad write");
  store_.write(key, std::move(value));
  util::Writer w;
  w.put(store_.version(key));
  return rpc::HandlerResult::success(w.take());
}

rpc::HandlerResult ShareServer::handle_hoard(const std::string& body) {
  util::Reader r(body);
  const auto n = r.get<std::uint32_t>();
  std::vector<std::string> keys;
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i)
    keys.push_back(r.get_string());
  if (r.failed()) return rpc::HandlerResult::error("bad hoard");
  util::Writer w;
  w.put(static_cast<std::uint32_t>(keys.size()));
  for (const std::string& key : keys) {
    const auto value = store_.read(key);
    w.put_string(key);
    w.put(value.has_value());
    w.put_string(value.value_or(""));
    w.put(store_.version(key));
  }
  return rpc::HandlerResult::success(w.take());
}

rpc::HandlerResult ShareServer::handle_bulk(const std::string& body) {
  util::Reader r(body);
  const auto n = r.get<std::uint32_t>();
  util::Writer w;
  w.put(n);
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    const std::string key = r.get_string();
    std::string value = r.get_string();
    const auto base = r.get<std::uint64_t>();
    if (r.failed()) break;
    const std::uint64_t current = store_.version(key);
    w.put_string(key);
    if (current == base) {
      store_.write(key, std::move(value));
      w.put(true);
      w.put(store_.version(key));
      w.put_string("");
    } else {
      ++bulk_conflicts_;
      w.put(false);
      w.put(current);
      w.put_string(store_.read(key).value_or(""));
    }
  }
  if (r.failed()) return rpc::HandlerResult::error("bad bulk");
  return rpc::HandlerResult::success(w.take());
}

}  // namespace coop::mobile
