// The mobile host: Coda-style disconnected operation over the coop share
// server (§3.3.3, §4.2.2).
//
// Connected   — reads/writes go to the server; reads refresh the cache.
// Partial     — same protocol over the radio link (the network model
//               applies radio bandwidth/loss); the host may prefer the
//               cache for reads to save bandwidth (configurable).
// Disconnected— reads are served from the hoarded cache (miss = failure);
//               writes append to the operation log with the cached base
//               version.
//
// On reconnection, reintegrate() ships the whole log in one *bulk* RPC
// (the paper's "bulk updates" on regaining connectivity).  Entries whose
// base version no longer matches the server are conflicts, surfaced
// through the resolution policy: server-wins discards the local change,
// client-wins force-writes it, manual hands it to a callback.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "rpc/rpc.hpp"
#include "util/stats.hpp"

namespace coop::mobile {

/// How reintegration conflicts are resolved.
enum class ConflictPolicy : std::uint8_t {
  kServerWins,  ///< drop the local change, adopt the server value
  kClientWins,  ///< force-write the local value over the server's
  kManual,      ///< surface to on_conflict; cache keeps the server value
};

/// A surfaced conflict (kManual, and informational for the others).
struct Conflict {
  std::string key;
  std::string local_value;
  std::string server_value;
};

struct MobileStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;      ///< disconnected reads that failed
  std::uint64_t remote_reads = 0;
  std::uint64_t remote_writes = 0;
  std::uint64_t logged_writes = 0;     ///< writes deferred while away
  std::uint64_t reintegrated = 0;      ///< log entries applied at server
  std::uint64_t conflicts = 0;
  std::uint64_t hoarded = 0;           ///< keys fetched by hoard walks
};

/// The mobile client node.
class MobileHost {
 public:
  MobileHost(net::Network& net, net::Address self, net::Address server,
             ConflictPolicy policy = ConflictPolicy::kServerWins);

  MobileHost(const MobileHost&) = delete;
  MobileHost& operator=(const MobileHost&) = delete;

  // --- connectivity ---------------------------------------------------------

  /// Changes this host's connectivity level; also updates the network
  /// model so in-flight traffic behaves accordingly.
  void set_connectivity(net::Connectivity level);

  /// RPC budget for server interactions.  Radio links need far larger
  /// timeouts than the defaults — a bulk reintegration of a long log can
  /// take seconds of serialization alone at 19.2 kbps.
  void set_call_options(const rpc::CallOptions& opts) { call_opts_ = opts; }
  [[nodiscard]] net::Connectivity connectivity() const noexcept {
    return level_;
  }

  // --- hoarding --------------------------------------------------------------

  /// Declares keys worth caching for disconnected use (the hoard
  /// profile), then fetches them.  @p done fires with the number fetched.
  void hoard(const std::vector<std::string>& keys,
             std::function<void(std::size_t)> done);

  // --- data operations --------------------------------------------------------

  using ReadFn = std::function<void(bool ok, std::optional<std::string>)>;
  using WriteFn = std::function<void(bool ok)>;

  /// Reads @p key: from the server when connected (refreshing the
  /// cache), from the cache when disconnected.
  void read(const std::string& key, ReadFn done);

  /// Writes @p key: to the server when connected, to the log otherwise.
  /// A logged write also updates the local cache so later local reads
  /// see it (read-your-writes while disconnected).
  void write(const std::string& key, std::string value, WriteFn done);

  // --- reintegration -----------------------------------------------------------

  /// Ships the operation log as one bulk RPC.  @p done receives the
  /// number of applied entries and the conflicts encountered.
  void reintegrate(
      std::function<void(std::size_t applied,
                         const std::vector<Conflict>& conflicts)>
          done);

  /// kManual conflicts land here as they are discovered.
  void on_conflict(std::function<void(const Conflict&)> fn) {
    on_conflict_ = std::move(fn);
  }

  [[nodiscard]] std::size_t log_size() const noexcept { return log_.size(); }
  [[nodiscard]] std::size_t cache_size() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] const MobileStats& stats() const noexcept { return stats_; }

 private:
  struct CacheEntry {
    std::string value;
    std::uint64_t version = 0;
    bool present = false;  ///< server had the key when cached
  };
  struct LogEntry {
    std::string key;
    std::string value;
    std::uint64_t base_version = 0;
  };

  void force_write(const std::string& key, const std::string& value);

  net::Network& net_;
  net::Address self_;
  net::Address server_;
  ConflictPolicy policy_;
  net::Connectivity level_ = net::Connectivity::kFull;
  rpc::CallOptions call_opts_ = {.timeout = sim::sec(2), .retries = 4,
                                 .backoff = 2.0};
  rpc::RpcClient rpc_;
  std::map<std::string, CacheEntry> cache_;
  std::deque<LogEntry> log_;
  std::function<void(const Conflict&)> on_conflict_;
  MobileStats stats_;
};

}  // namespace coop::mobile
