// The fixed-network side of disconnected operation: a versioned shared
// store exported over RPC, with hoard (batch fetch) and bulk-reintegration
// (batch conditional write) operations.
//
// §4.2.2 mobility: "new techniques will be required, for example, to cache
// significant portions of the data on the mobile computer.  Care must also
// be taken to maintain consistency if data is shared across several
// mobiles" and "services will take advantage of higher levels of
// connection to perform bulk updates, e.g. of cached data."
//
// Methods exposed:
//   read   (key)                      -> value?, version
//   write  (key, value)               -> version
//   hoard  ([keys])                   -> [(key, value?, version)]
//   bulk   ([(key, value, base_ver)]) -> [(key, applied?, new/cur ver,
//                                          server value on conflict)]
//
// A bulk entry applies only if its base version still matches the server's
// current version for the key (first-writer-wins conflict detection, as in
// Coda's reintegration).
#pragma once

#include <cstdint>
#include <string>

#include "ccontrol/store.hpp"
#include "rpc/rpc.hpp"

namespace coop::mobile {

/// Result of one reintegration entry.
struct BulkResult {
  std::string key;
  bool applied = false;
  std::uint64_t version = 0;    ///< new version if applied, else current
  std::string server_value;     ///< present on conflict (for resolution)
};

/// Hosts the store and its RPC surface.
class ShareServer {
 public:
  ShareServer(net::Network& net, net::Address self);

  [[nodiscard]] net::Address address() const noexcept {
    return server_.address();
  }
  [[nodiscard]] ccontrol::ObjectStore& store() noexcept { return store_; }
  [[nodiscard]] const ccontrol::ObjectStore& store() const noexcept {
    return store_;
  }

  [[nodiscard]] std::uint64_t bulk_conflicts() const noexcept {
    return bulk_conflicts_;
  }

 private:
  rpc::HandlerResult handle_read(const std::string& body);
  rpc::HandlerResult handle_write(const std::string& body);
  rpc::HandlerResult handle_hoard(const std::string& body);
  rpc::HandlerResult handle_bulk(const std::string& body);

  rpc::RpcServer server_;
  ccontrol::ObjectStore store_;
  std::uint64_t bulk_conflicts_ = 0;
};

}  // namespace coop::mobile
