#include "mobile/host.hpp"

#include <utility>

#include "util/codec.hpp"

namespace coop::mobile {

MobileHost::MobileHost(net::Network& net, net::Address self,
                       net::Address server, ConflictPolicy policy)
    : net_(net),
      self_(self),
      server_(server),
      policy_(policy),
      rpc_(net, self) {}

void MobileHost::set_connectivity(net::Connectivity level) {
  level_ = level;
  net_.set_connectivity(self_.node, level);
}

void MobileHost::hoard(const std::vector<std::string>& keys,
                       std::function<void(std::size_t)> done) {
  util::Writer w;
  w.put(static_cast<std::uint32_t>(keys.size()));
  for (const std::string& k : keys) w.put_string(k);
  rpc_.call(server_, "hoard", w.take(),
            [this, done = std::move(done)](const rpc::RpcResult& res) {
              if (!res.ok()) {
                if (done) done(0);
                return;
              }
              util::Reader r(res.reply);
              const auto n = r.get<std::uint32_t>();
              std::size_t fetched = 0;
              for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
                const std::string key = r.get_string();
                const bool present = r.get<bool>();
                std::string value = r.get_string();
                const auto version = r.get<std::uint64_t>();
                if (r.failed()) break;
                cache_[key] = {std::move(value), version, present};
                ++fetched;
                ++stats_.hoarded;
              }
              if (done) done(fetched);
            },
            call_opts_);
}

void MobileHost::read(const std::string& key, ReadFn done) {
  if (level_ == net::Connectivity::kDisconnected) {
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      ++stats_.cache_misses;
      done(false, std::nullopt);
      return;
    }
    ++stats_.cache_hits;
    if (!it->second.present) {
      done(true, std::nullopt);  // cached absence
    } else {
      done(true, it->second.value);
    }
    return;
  }
  ++stats_.remote_reads;
  util::Writer w;
  w.put_string(key);
  rpc_.call(server_, "read", w.take(),
            [this, key, done = std::move(done)](const rpc::RpcResult& res) {
              if (!res.ok()) {
                // Network trouble mid-transition: degrade to the cache.
                auto it = cache_.find(key);
                if (it != cache_.end()) {
                  ++stats_.cache_hits;
                  done(true, it->second.present
                                 ? std::optional<std::string>(it->second.value)
                                 : std::nullopt);
                } else {
                  done(false, std::nullopt);
                }
                return;
              }
              util::Reader r(res.reply);
              const bool present = r.get<bool>();
              std::string value = r.get_string();
              const auto version = r.get<std::uint64_t>();
              if (r.failed()) {
                done(false, std::nullopt);
                return;
              }
              cache_[key] = {value, version, present};
              done(true, present ? std::optional<std::string>(std::move(value))
                                 : std::nullopt);
            },
            call_opts_);
}

void MobileHost::write(const std::string& key, std::string value,
                       WriteFn done) {
  if (level_ == net::Connectivity::kDisconnected) {
    ++stats_.logged_writes;
    const std::uint64_t base =
        cache_.count(key) != 0 ? cache_[key].version : 0;
    // Coalesce repeated writes to the same key: the log keeps the first
    // base version (what we last saw from the server) with the latest
    // value.
    for (LogEntry& e : log_) {
      if (e.key == key) {
        e.value = std::move(value);
        cache_[key] = {e.value, e.base_version, true};
        done(true);
        return;
      }
    }
    log_.push_back({key, value, base});
    cache_[key] = {std::move(value), base, true};
    done(true);
    return;
  }
  ++stats_.remote_writes;
  util::Writer w;
  w.put_string(key);
  w.put_string(value);
  rpc_.call(server_, "write", w.take(),
            [this, key, value = std::move(value),
             done = std::move(done)](const rpc::RpcResult& res) mutable {
              if (!res.ok()) {
                done(false);
                return;
              }
              util::Reader r(res.reply);
              const auto version = r.get<std::uint64_t>();
              if (!r.failed()) cache_[key] = {std::move(value), version, true};
              done(true);
            },
            call_opts_);
}

void MobileHost::force_write(const std::string& key,
                             const std::string& value) {
  util::Writer w;
  w.put_string(key);
  w.put_string(value);
  rpc_.call(server_, "write", w.take(), [](const rpc::RpcResult&) {},
            call_opts_);
}

void MobileHost::reintegrate(
    std::function<void(std::size_t, const std::vector<Conflict>&)> done) {
  if (log_.empty()) {
    done(0, {});
    return;
  }
  util::Writer w;
  w.put(static_cast<std::uint32_t>(log_.size()));
  for (const LogEntry& e : log_) {
    w.put_string(e.key);
    w.put_string(e.value);
    w.put(e.base_version);
  }
  // Keep local copies for conflict resolution while the RPC is in flight.
  auto entries = log_;
  log_.clear();
  rpc_.call(
      server_, "bulk", w.take(),
      [this, entries = std::move(entries),
       done = std::move(done)](const rpc::RpcResult& res) {
        std::vector<Conflict> conflicts;
        if (!res.ok()) {
          // Reintegration failed wholesale (e.g. dropped back to
          // disconnected): restore the log for a later attempt.
          for (const LogEntry& e : entries) log_.push_back(e);
          done(0, conflicts);
          return;
        }
        util::Reader r(res.reply);
        const auto n = r.get<std::uint32_t>();
        std::size_t applied = 0;
        for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
          const std::string key = r.get_string();
          const bool ok = r.get<bool>();
          const auto version = r.get<std::uint64_t>();
          std::string server_value = r.get_string();
          if (r.failed()) break;
          if (ok) {
            ++applied;
            ++stats_.reintegrated;
            if (auto it = cache_.find(key); it != cache_.end())
              it->second.version = version;
            continue;
          }
          ++stats_.conflicts;
          Conflict c{key, entries[i].value, std::move(server_value)};
          switch (policy_) {
            case ConflictPolicy::kServerWins:
              cache_[key] = {c.server_value, version, true};
              break;
            case ConflictPolicy::kClientWins:
              force_write(key, c.local_value);
              break;
            case ConflictPolicy::kManual:
              cache_[key] = {c.server_value, version, true};
              if (on_conflict_) on_conflict_(c);
              break;
          }
          conflicts.push_back(std::move(c));
        }
        done(applied, conflicts);
      },
      call_opts_);
}

}  // namespace coop::mobile
