#include "fault/invariants.hpp"

#include <cstring>

namespace coop::fault {

void Invariants::check_at_most_once() {
  for (const auto& [op, count] : executions_) {
    if (count > 1) {
      violation("at-most-once: op '" + op + "' executed " +
                std::to_string(count) + " times in one incarnation");
    }
  }
}

void Invariants::check_acknowledged_durable() {
  for (const auto& [op, acked] : acknowledged_) {
    if (!acked) continue;
    const auto it = applied_.find(op);
    if (it == applied_.end() || !it->second) {
      violation("acknowledged op lost: '" + op +
                "' was acked to the client but is absent from the durable "
                "state");
    }
  }
}

void Invariants::check_convergence() {
  const std::string* first = nullptr;
  const std::string* first_replica = nullptr;
  for (const auto& [replica, digest] : digests_) {
    if (first == nullptr) {
      first = &digest;
      first_replica = &replica;
      continue;
    }
    if (digest != *first) {
      violation("divergence: replica '" + replica + "' digest '" + digest +
                "' != '" + *first_replica + "' digest '" + *first + "'");
    }
  }
}

void Invariants::check_view_agreement() {
  const std::pair<std::uint64_t, std::size_t>* first = nullptr;
  const std::string* first_member = nullptr;
  for (const auto& [member, view] : views_) {
    if (first == nullptr) {
      first = &view;
      first_member = &member;
      continue;
    }
    if (view != *first) {
      violation("view disagreement: '" + member + "' installed view " +
                std::to_string(view.first) + " (" +
                std::to_string(view.second) + " members) but '" +
                *first_member + "' installed view " +
                std::to_string(first->first) + " (" +
                std::to_string(first->second) + " members)");
    }
  }
}

void Invariants::check_no_acked_shed() {
  for (const auto& [op, shed_count] : sheds_) {
    if (shed_count == 0) continue;
    const auto ack = acknowledged_.find(op);
    if (ack == acknowledged_.end() || !ack->second) continue;
    const auto exec = executions_.find(op);
    if (exec == executions_.end() || exec->second == 0) {
      violation("acked-but-shed: op '" + op + "' was acknowledged, " +
                std::to_string(shed_count) +
                " attempt(s) were shed, and no execution was recorded — a "
                "pushback was converted into a success");
    }
  }
}

void Invariants::check_corruption_contained(const net::NetworkStats& stats,
                                            std::uint64_t injected_corrupt) {
  // Every injected corruption must be absorbed by a drop path.  Frames
  // can die of partition/loss/no-endpoint before the integrity check, so
  // dropped_corrupt alone may undercount — but the total drop capacity
  // must cover the injections, or a mangled frame was delivered.
  const std::uint64_t other_drops = stats.dropped_loss +
                                    stats.dropped_partition +
                                    stats.dropped_no_endpoint;
  if (stats.dropped_corrupt > injected_corrupt) {
    violation("corruption accounting: net.dropped_corrupt (" +
              std::to_string(stats.dropped_corrupt) +
              ") exceeds injected corruptions (" +
              std::to_string(injected_corrupt) + ")");
  }
  if (injected_corrupt > stats.dropped_corrupt + other_drops) {
    violation("corruption leak: " +
              std::to_string(injected_corrupt - stats.dropped_corrupt -
                             other_drops) +
              " corrupted frame(s) unaccounted for — some reached an "
              "Endpoint");
  }
}

void Invariants::check_acked_broadcasts_delivered() {
  for (const auto& [member, delivered] : delivered_broadcasts_) {
    for (const auto& [key, acked] : acked_broadcasts_) {
      if (!acked) continue;
      if (delivered.count(key) == 0) {
        violation("acked broadcast lost: '" + key +
                  "' was committed by the group but survivor '" + member +
                  "' never delivered it");
      }
    }
  }
}

void Invariants::check_single_active_coordinator() {
  if (coordinators_.empty()) return;
  std::vector<std::string> active;
  for (const auto& [name, is_active] : coordinators_) {
    if (is_active) active.push_back(name);
  }
  if (active.size() > 1) {
    std::string who;
    for (const auto& a : active) {
      if (!who.empty()) who += ", ";
      who += "'" + a + "'";
    }
    violation("split brain: " + std::to_string(active.size()) +
              " coordinators ended the run active (" + who + ")");
  } else if (active.empty()) {
    violation("headless group: " + std::to_string(coordinators_.size()) +
              " coordinator instance(s) recorded, none active — the "
              "primary partition failed to elect");
  }
}

void Invariants::check_views_monotone() {
  for (const auto& [member, ids] : installed_) {
    for (std::size_t i = 1; i < ids.size(); ++i) {
      if (ids[i] <= ids[i - 1]) {
        violation("view rollback: '" + member + "' installed view " +
                  std::to_string(ids[i]) + " after view " +
                  std::to_string(ids[i - 1]) +
                  " — ids must be strictly monotone across failover");
      }
    }
  }
}

void Invariants::check_log_bounded(const std::string& replica,
                                   std::size_t max_observed_bytes,
                                   std::size_t cap_bytes) {
  if (max_observed_bytes > cap_bytes) {
    violation("unbounded log: replica '" + replica + "' WAL peaked at " +
              std::to_string(max_observed_bytes) + " bytes, cap " +
              std::to_string(cap_bytes) +
              " — compaction fell behind sustained writes");
  }
}

void Invariants::check_all() {
  check_at_most_once();
  check_acknowledged_durable();
  check_convergence();
  check_view_agreement();
  check_no_acked_shed();
  check_acked_broadcasts_delivered();
  check_single_active_coordinator();
  check_views_monotone();
}

void Invariants::clear() {
  executions_.clear();
  sheds_.clear();
  acknowledged_.clear();
  applied_.clear();
  digests_.clear();
  views_.clear();
  acked_broadcasts_.clear();
  delivered_broadcasts_.clear();
  coordinators_.clear();
  installed_.clear();
  violations_.clear();
}

std::vector<sim::Duration> recovery_latencies(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<sim::Duration> out;
  bool have_outage_end = false;
  sim::TimePoint outage_end = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.category != obs::Category::kFault) continue;
    if (std::strcmp(e.name, "restart") == 0 ||
        std::strcmp(e.name, "heal") == 0) {
      // Consecutive outage-ends before one recovery: measure from the
      // latest (service cannot have been healthy in between).
      outage_end = e.ts;
      have_outage_end = true;
    } else if (std::strcmp(e.name, "recovered") == 0 && have_outage_end) {
      out.push_back(e.ts - outage_end);
      have_outage_end = false;
    }
  }
  return out;
}

}  // namespace coop::fault
