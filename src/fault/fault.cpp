#include "fault/fault.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace coop::fault {

FaultPlan::FaultPlan(net::Network& net) : net_(net) {
  auto& m = net_.obs().metrics;
  crashes_ctr_ = &m.counter("fault.crashes");
  restarts_ctr_ = &m.counter("fault.restarts");
  partitions_ctr_ = &m.counter("fault.partitions");
  heals_ctr_ = &m.counter("fault.heals");
  degrade_ctr_ = &m.counter("fault.degrade_windows");
  corrupt_ctr_ = &m.counter("fault.injected.corrupt");
  duplicate_ctr_ = &m.counter("fault.injected.duplicate");
  delay_ctr_ = &m.counter("fault.injected.delay");
}

FaultPlan::~FaultPlan() {
  // The hook closes over `this`; never leave it dangling on the network.
  if (armed_) net_.set_inject_hook(nullptr);
}

FaultPlan& FaultPlan::crash(sim::TimePoint at, net::NodeId node,
                            sim::Duration downtime) {
  crashes_.push_back({at, node, downtime});
  return *this;
}

FaultPlan& FaultPlan::partition(sim::TimePoint at,
                                std::set<net::NodeId> side_a,
                                sim::Duration duration) {
  partitions_.push_back({at, std::move(side_a), duration});
  return *this;
}

FaultPlan& FaultPlan::degrade(sim::TimePoint at, sim::Duration duration,
                              const net::LinkDisturbance& disturbance) {
  degrades_.push_back({at, duration, disturbance});
  return *this;
}

FaultPlan& FaultPlan::corrupt(sim::TimePoint at, sim::Duration duration,
                              double prob) {
  corrupts_.push_back({at, duration, prob, 0});
  return *this;
}

FaultPlan& FaultPlan::duplicate(sim::TimePoint at, sim::Duration duration,
                                double prob) {
  duplicates_.push_back({at, duration, prob, 0});
  return *this;
}

FaultPlan& FaultPlan::delay(sim::TimePoint at, sim::Duration duration,
                            double prob, sim::Duration extra) {
  delays_.push_back({at, duration, prob, extra});
  return *this;
}

void FaultPlan::fault_event(const char* name,
                            std::initializer_list<obs::Attr> attrs) {
  net_.obs().tracer.event(net_.simulator().now(), obs::Category::kFault,
                          name, attrs);
}

void FaultPlan::apply_disturbance() {
  if (active_degrades_.empty()) {
    net_.clear_disturbance();
    return;
  }
  net::LinkDisturbance combined;
  for (const net::LinkDisturbance& d : active_degrades_) {
    combined.extra_loss += d.extra_loss;
    combined.extra_latency += d.extra_latency;
    combined.extra_jitter += d.extra_jitter;
  }
  combined.extra_loss = std::min(combined.extra_loss, 1.0);
  net_.set_disturbance(combined);
}

net::InjectDecision FaultPlan::on_datagram(const net::Message& msg) {
  sim::Rng& rng = net_.simulator().rng();
  net::InjectDecision d;
  const auto prob_sum = [](const std::vector<double>& v) {
    double p = 0;
    for (const double x : v) p += x;
    return std::min(p, 1.0);
  };
  if (!active_corrupts_.empty() &&
      rng.bernoulli(prob_sum(active_corrupts_))) {
    d.corrupt = true;
    ++injected_.corrupt_frames;
    corrupt_ctr_->inc();
    fault_event("inject_corrupt",
                {{"src", static_cast<double>(msg.src.node)},
                 {"dst", static_cast<double>(msg.dst.node)}});
  }
  if (!active_duplicates_.empty() &&
      rng.bernoulli(prob_sum(active_duplicates_))) {
    d.duplicate = true;
    ++injected_.duplicate_frames;
    duplicate_ctr_->inc();
    fault_event("inject_duplicate",
                {{"src", static_cast<double>(msg.src.node)},
                 {"dst", static_cast<double>(msg.dst.node)}});
  }
  if (!active_delays_.empty()) {
    double p = 0;
    sim::Duration extra = 0;
    for (const auto& [wp, we] : active_delays_) {
      p += wp;
      extra = std::max(extra, we);
    }
    if (rng.bernoulli(std::min(p, 1.0))) {
      d.extra_delay = extra;
      ++injected_.delayed_frames;
      delay_ctr_->inc();
      fault_event("inject_delay",
                  {{"src", static_cast<double>(msg.src.node)},
                   {"dst", static_cast<double>(msg.dst.node)},
                   {"extra", static_cast<double>(extra)}});
    }
  }
  return d;
}

void FaultPlan::arm() {
  if (armed_) return;
  armed_ = true;
  sim::Simulator& sim = net_.simulator();

  // Normalize: at most one outstanding crash per node.  Two overlapping
  // crash windows would race two incarnation lifecycles on one address
  // (the second restart re-creates protocol objects whose predecessors'
  // destructors then detach the *new* endpoints).  Specs are sorted by
  // time and a spec starting inside an accepted window for the same node
  // is dropped; back-to-back (restart time == next crash time) is fine.
  std::sort(crashes_.begin(), crashes_.end(),
            [](const CrashSpec& a, const CrashSpec& b) {
              return a.at != b.at ? a.at < b.at : a.node < b.node;
            });
  std::map<net::NodeId, sim::TimePoint> down_until;
  std::vector<CrashSpec> effective;
  for (const CrashSpec& spec : crashes_) {
    const auto it = down_until.find(spec.node);
    if (it != down_until.end() && spec.at < it->second) continue;
    down_until[spec.node] = spec.at + spec.downtime;
    effective.push_back(spec);
  }
  crashes_ = std::move(effective);

  for (const CrashSpec& spec : crashes_) {
    sim.schedule_at(spec.at, [this, spec] {
      net_.crash(spec.node);
      ++injected_.crashes;
      crashes_ctr_->inc();
      fault_event("crash", {{"node", static_cast<double>(spec.node)},
                            {"downtime",
                             static_cast<double>(spec.downtime)}});
      if (crash_fn_) crash_fn_(spec.node);
    });
    sim.schedule_at(spec.at + spec.downtime, [this, spec] {
      net_.restart(spec.node);
      ++injected_.restarts;
      restarts_ctr_->inc();
      fault_event("restart", {{"node", static_cast<double>(spec.node)}});
      if (restart_fn_) restart_fn_(spec.node);
    });
  }

  // The network models one cut at a time: overlapping scripted partitions
  // apply last-writer-wins, and any heal removes the current cut.
  for (const PartitionSpec& spec : partitions_) {
    sim.schedule_at(spec.at, [this, spec] {
      net_.partition(spec.side_a);
      ++injected_.partitions;
      partitions_ctr_->inc();
      fault_event("partition",
                  {{"side_a", static_cast<double>(spec.side_a.size())},
                   {"duration", static_cast<double>(spec.duration)}});
    });
    sim.schedule_at(spec.at + spec.duration, [this] {
      net_.heal_partition();
      ++injected_.heals;
      heals_ctr_->inc();
      fault_event("heal", {});
    });
  }

  for (const DegradeSpec& spec : degrades_) {
    sim.schedule_at(spec.at, [this, spec] {
      active_degrades_.push_back(spec.disturbance);
      apply_disturbance();
      ++injected_.degrade_windows;
      degrade_ctr_->inc();
      fault_event("degrade_begin",
                  {{"extra_loss", spec.disturbance.extra_loss},
                   {"extra_latency",
                    static_cast<double>(spec.disturbance.extra_latency)},
                   {"duration", static_cast<double>(spec.duration)}});
    });
    sim.schedule_at(spec.at + spec.duration, [this, spec] {
      const auto it = std::find_if(
          active_degrades_.begin(), active_degrades_.end(),
          [&](const net::LinkDisturbance& d) {
            return d.extra_loss == spec.disturbance.extra_loss &&
                   d.extra_latency == spec.disturbance.extra_latency &&
                   d.extra_jitter == spec.disturbance.extra_jitter;
          });
      if (it != active_degrades_.end()) active_degrades_.erase(it);
      apply_disturbance();
      fault_event("degrade_end", {});
    });
  }

  const auto arm_windows = [&](std::vector<WindowSpec>& specs,
                               auto on_begin, auto on_end,
                               const char* begin_name,
                               const char* end_name) {
    for (const WindowSpec& spec : specs) {
      sim.schedule_at(spec.at, [this, spec, on_begin, begin_name] {
        on_begin(spec);
        fault_event(begin_name,
                    {{"prob", spec.prob},
                     {"duration", static_cast<double>(spec.duration)}});
      });
      sim.schedule_at(spec.at + spec.duration,
                      [this, spec, on_end, end_name] {
                        on_end(spec);
                        fault_event(end_name, {});
                      });
    }
  };

  arm_windows(
      corrupts_,
      [this](const WindowSpec& s) { active_corrupts_.push_back(s.prob); },
      [this](const WindowSpec& s) {
        const auto it = std::find(active_corrupts_.begin(),
                                  active_corrupts_.end(), s.prob);
        if (it != active_corrupts_.end()) active_corrupts_.erase(it);
      },
      "corrupt_begin", "corrupt_end");
  arm_windows(
      duplicates_,
      [this](const WindowSpec& s) { active_duplicates_.push_back(s.prob); },
      [this](const WindowSpec& s) {
        const auto it = std::find(active_duplicates_.begin(),
                                  active_duplicates_.end(), s.prob);
        if (it != active_duplicates_.end()) active_duplicates_.erase(it);
      },
      "duplicate_begin", "duplicate_end");
  arm_windows(
      delays_,
      [this](const WindowSpec& s) {
        active_delays_.emplace_back(s.prob, s.extra);
      },
      [this](const WindowSpec& s) {
        const auto it =
            std::find(active_delays_.begin(), active_delays_.end(),
                      std::pair<double, sim::Duration>{s.prob, s.extra});
        if (it != active_delays_.end()) active_delays_.erase(it);
      },
      "delay_begin", "delay_end");

  net_.set_inject_hook(
      [this](const net::Message& msg) { return on_datagram(msg); });
}

// ----------------------------------------------------------- chaos engine

sim::TimePoint ChaosEngine::draw_time(const ChaosProfile& p) {
  if (p.horizon <= p.start + 1) return p.start;
  return rng_.uniform_int(p.start, p.horizon - 1);
}

sim::Duration ChaosEngine::draw_range(sim::Duration lo, sim::Duration hi) {
  if (hi <= lo) return lo;
  return rng_.uniform_int(lo, hi);
}

void ChaosEngine::populate(FaultPlan& plan, const ChaosProfile& profile) {
  for (int i = 0; i < profile.crashes && !profile.nodes.empty(); ++i) {
    const net::NodeId node =
        profile.nodes[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(profile.nodes.size()) - 1))];
    plan.crash(draw_time(profile), node,
               draw_range(profile.min_downtime, profile.max_downtime));
  }
  for (int i = 0; i < profile.partitions && profile.nodes.size() >= 2; ++i) {
    // Random non-trivial cut: coin-flip each node into side A, then patch
    // up the degenerate all/none outcomes deterministically.
    std::set<net::NodeId> side_a;
    for (const net::NodeId n : profile.nodes) {
      if (rng_.bernoulli(0.5)) side_a.insert(n);
    }
    if (side_a.empty()) side_a.insert(profile.nodes.front());
    if (side_a.size() == profile.nodes.size())
      side_a.erase(profile.nodes.back());
    plan.partition(draw_time(profile), std::move(side_a),
                   draw_range(profile.min_partition, profile.max_partition));
  }
  for (int i = 0; i < profile.degrade_windows; ++i) {
    plan.degrade(draw_time(profile),
                 draw_range(profile.min_window, profile.max_window),
                 profile.disturbance);
  }
  for (int i = 0; i < profile.corrupt_windows; ++i) {
    plan.corrupt(draw_time(profile),
                 draw_range(profile.min_window, profile.max_window),
                 profile.corrupt_prob);
  }
  for (int i = 0; i < profile.duplicate_windows; ++i) {
    plan.duplicate(draw_time(profile),
                   draw_range(profile.min_window, profile.max_window),
                   profile.duplicate_prob);
  }
  for (int i = 0; i < profile.delay_windows; ++i) {
    plan.delay(draw_time(profile),
               draw_range(profile.min_window, profile.max_window),
               profile.delay_prob, profile.delay_extra);
  }
}

}  // namespace coop::fault
