// Deterministic chaos plane: scripted and seeded fault injection driven by
// the simulation clock.
//
// The paper (§4.2.2) makes disconnection, roaming and partial failure
// *first-class* conditions a CSCW-aware ODP platform must survive, not
// exceptions.  This module turns the ad-hoc fault pokes scattered through
// individual tests into a systematic plane:
//
//   * FaultPlan — a scripted timeline of faults armed onto one Network:
//     node crash -> restart (a real process lifecycle, with teardown and
//     re-creation callbacks), partition -> heal, link-degradation windows
//     (loss/latency/jitter spikes via net::LinkDisturbance), and
//     per-datagram corruption/duplication/delay windows routed through the
//     Network's injection hook.
//   * ChaosEngine — fills a plan from a seeded RNG and a scenario profile.
//     The engine's RNG is private (not the simulator's), so generating the
//     schedule never perturbs workload draws: same seed => same schedule
//     => byte-identical artifacts.
//
// Determinism contract: every choice the plane makes is a pure function of
// (engine seed, profile, arming order) plus the simulator's own seeded
// stream for per-datagram draws.  Every injection is stamped as a fault.*
// metric and a Category::kFault trace event, so a run's chaos is fully
// reconstructable from its artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <set>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace coop::fault {

/// Counts of faults actually injected so far (mirrored as "fault.*"
/// registry counters; this struct is the cheap in-process view).
struct InjectedStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t degrade_windows = 0;
  std::uint64_t corrupt_frames = 0;
  std::uint64_t duplicate_frames = 0;
  std::uint64_t delayed_frames = 0;
};

/// A scripted timeline of faults against one Network.  Build the script
/// with the fluent mutators (times are absolute sim time), register the
/// crash/restart lifecycle callbacks, then arm() once before running the
/// simulation.  The plan must outlive the simulation run (it owns the
/// injection hook and the window state the hook reads).
class FaultPlan {
 public:
  explicit FaultPlan(net::Network& net);
  ~FaultPlan();

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // --- scripted timeline ---------------------------------------------------

  /// Crash @p node at @p at; restart it @p downtime later.  At crash time
  /// the on_crash callback runs *after* Network::crash (tear down the
  /// node's protocol objects; their destructors detach, so in-flight
  /// frames to the dead process drop).  At restart time Network::restart
  /// runs first, then on_restart (re-create protocol objects; endpoints
  /// re-register, FIFO peers resynchronize, members rejoin).
  FaultPlan& crash(sim::TimePoint at, net::NodeId node,
                   sim::Duration downtime);

  /// Partition @p side_a from everyone else at @p at; heal after
  /// @p duration.
  FaultPlan& partition(sim::TimePoint at, std::set<net::NodeId> side_a,
                       sim::Duration duration);

  /// Degrade every link by @p disturbance during [at, at + duration).
  FaultPlan& degrade(sim::TimePoint at, sim::Duration duration,
                     const net::LinkDisturbance& disturbance);

  /// Corrupt each datagram with probability @p prob during the window.
  FaultPlan& corrupt(sim::TimePoint at, sim::Duration duration, double prob);

  /// Duplicate each datagram with probability @p prob during the window.
  FaultPlan& duplicate(sim::TimePoint at, sim::Duration duration,
                       double prob);

  /// Delay each datagram by @p extra with probability @p prob during the
  /// window.
  FaultPlan& delay(sim::TimePoint at, sim::Duration duration, double prob,
                   sim::Duration extra);

  // --- lifecycle callbacks -------------------------------------------------

  FaultPlan& on_crash(std::function<void(net::NodeId)> fn) {
    crash_fn_ = std::move(fn);
    return *this;
  }

  FaultPlan& on_restart(std::function<void(net::NodeId)> fn) {
    restart_fn_ = std::move(fn);
    return *this;
  }

  // --- arming --------------------------------------------------------------

  /// Schedules every scripted fault on the network's simulator and
  /// installs the per-datagram injection hook.  Call exactly once.
  void arm();

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] const InjectedStats& injected() const noexcept {
    return injected_;
  }

 private:
  struct CrashSpec {
    sim::TimePoint at;
    net::NodeId node;
    sim::Duration downtime;
  };
  struct PartitionSpec {
    sim::TimePoint at;
    std::set<net::NodeId> side_a;
    sim::Duration duration;
  };
  struct DegradeSpec {
    sim::TimePoint at;
    sim::Duration duration;
    net::LinkDisturbance disturbance;
  };
  struct WindowSpec {
    sim::TimePoint at;
    sim::Duration duration;
    double prob;
    sim::Duration extra;  // delay windows only
  };

  [[nodiscard]] net::InjectDecision on_datagram(const net::Message& msg);
  void apply_disturbance();
  void fault_event(const char* name, std::initializer_list<obs::Attr> attrs);

  net::Network& net_;
  std::function<void(net::NodeId)> crash_fn_;
  std::function<void(net::NodeId)> restart_fn_;
  std::vector<CrashSpec> crashes_;
  std::vector<PartitionSpec> partitions_;
  std::vector<DegradeSpec> degrades_;
  std::vector<WindowSpec> corrupts_;
  std::vector<WindowSpec> duplicates_;
  std::vector<WindowSpec> delays_;

  // Live window state read by the injection hook.  Overlapping windows of
  // one class combine by probability sum (clamped to 1); overlapping delay
  // windows apply the largest extra delay; overlapping degradations add.
  std::vector<net::LinkDisturbance> active_degrades_;
  std::vector<double> active_corrupts_;
  std::vector<double> active_duplicates_;
  std::vector<std::pair<double, sim::Duration>> active_delays_;

  InjectedStats injected_;
  // Registry-owned "fault.*" counters; injected_ is the hot view.
  util::Counter* crashes_ctr_;
  util::Counter* restarts_ctr_;
  util::Counter* partitions_ctr_;
  util::Counter* heals_ctr_;
  util::Counter* degrade_ctr_;
  util::Counter* corrupt_ctr_;
  util::Counter* duplicate_ctr_;
  util::Counter* delay_ctr_;
  bool armed_ = false;
};

/// Scenario profile for ChaosEngine: how many faults of each class to
/// scatter over [start, horizon), and their parameter ranges.  All draws
/// are uniform over the given ranges.
struct ChaosProfile {
  std::vector<net::NodeId> nodes;  ///< crashable / partitionable nodes
  sim::TimePoint start = 0;
  sim::TimePoint horizon = sim::sec(2);

  int crashes = 0;
  sim::Duration min_downtime = sim::msec(50);
  sim::Duration max_downtime = sim::msec(250);

  int partitions = 0;
  sim::Duration min_partition = sim::msec(100);
  sim::Duration max_partition = sim::msec(400);

  int degrade_windows = 0;
  net::LinkDisturbance disturbance{.extra_loss = 0.05,
                                   .extra_latency = sim::msec(20),
                                   .extra_jitter = sim::msec(10)};

  int corrupt_windows = 0;
  double corrupt_prob = 0.2;

  int duplicate_windows = 0;
  double duplicate_prob = 0.2;

  int delay_windows = 0;
  double delay_prob = 0.2;
  sim::Duration delay_extra = sim::msec(30);

  /// Duration range for degrade/corrupt/duplicate/delay windows.
  sim::Duration min_window = sim::msec(100);
  sim::Duration max_window = sim::msec(400);
};

/// Seeded schedule generator: same seed + same profile => the same plan,
/// independent of the simulator's stream.
class ChaosEngine {
 public:
  explicit ChaosEngine(std::uint64_t seed) : rng_(seed) {}

  /// Appends a randomized schedule drawn from the engine's RNG to @p plan.
  void populate(FaultPlan& plan, const ChaosProfile& profile);

 private:
  [[nodiscard]] sim::TimePoint draw_time(const ChaosProfile& p);
  [[nodiscard]] sim::Duration draw_range(sim::Duration lo, sim::Duration hi);

  sim::Rng rng_;
};

}  // namespace coop::fault
