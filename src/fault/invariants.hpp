// Safety invariants a chaos run must preserve, and trace mining for
// recovery latency.
//
// The chaos plane proves nothing by itself — the point is that the stack
// *withstands* it.  Invariants is an evidence collector the harness feeds
// while the workload runs (executions, acknowledgements, durable applies,
// replica digests, installed views) plus a set of checks evaluated after
// quiesce.  Violations accumulate as human-readable strings; a run is
// clean iff ok().
//
// The checks encode the platform's actual guarantees, restart semantics
// included:
//   * at-most-once — no operation executes twice within one server
//     incarnation (the RPC replay cache's contract; callers key recorded
//     executions by incarnation when a server restarts, because the cache
//     is volatile and a retry spanning the restart may legitimately
//     re-execute).
//   * no acknowledged op lost — every operation a client saw succeed is
//     present in the durable state.
//   * replica convergence — after heal + quiesce, all replicas report the
//     same digest.
//   * view agreement — after quiesce, every live member installed the
//     same view (id and size).
//   * corruption containment — every corrupted frame the chaos plane
//     injected is accounted for by net.dropped_corrupt or one of the
//     other drop paths; none can have been delivered.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "obs/trace.hpp"

namespace coop::fault {

class Invariants {
 public:
  // --- evidence ------------------------------------------------------------

  /// A server-side handler executed @p op.  Key ops by server incarnation
  /// (e.g. "srv#2:op17") when the server restarts mid-run: at-most-once
  /// holds per incarnation, not across the replay cache's death.
  void record_execution(const std::string& op) { ++executions_[op]; }

  /// A client observed success for @p op.
  void record_acknowledged(const std::string& op) { acknowledged_[op] = true; }

  /// @p op is present in the durable (crash-surviving) state.
  void record_applied(const std::string& op) { applied_[op] = true; }

  /// Replica @p replica's final state digest.
  void record_state(const std::string& replica, const std::string& digest) {
    digests_[replica] = digest;
  }

  /// Member @p member's final installed view.
  void record_view(const std::string& member, std::uint64_t view_id,
                   std::size_t members) {
    views_[member] = {view_id, members};
  }

  /// The overload plane shed (or fast-failed) an attempt of @p op.
  void record_shed(const std::string& op) { ++sheds_[op]; }

  /// Broadcast @p key was acknowledged to its originator (it saw the
  /// message delivered back to itself, i.e. the group committed it).
  void record_broadcast_acked(const std::string& key) {
    acked_broadcasts_[key] = true;
  }

  /// Surviving member @p member delivered broadcast @p key.  Only feed
  /// members that lived through the run: a crashed member legitimately
  /// misses traffic.
  void record_broadcast_delivered(const std::string& member,
                                  const std::string& key) {
    delivered_broadcasts_[member].insert(key);
  }

  /// Coordinator instance @p name ended the run with the given active
  /// flag (feed every instance that ever existed, survivors only).
  void record_coordinator(const std::string& name, bool active) {
    coordinators_.emplace_back(name, active);
  }

  /// Member @p member installed view @p view_id — call in installation
  /// order; the monotonicity check replays the sequence.
  void record_view_installed(const std::string& member,
                             std::uint64_t view_id) {
    installed_[member].push_back(view_id);
  }

  // --- checks --------------------------------------------------------------

  void check_at_most_once();
  void check_acknowledged_durable();
  void check_convergence();
  void check_view_agreement();

  /// Load shedding must refuse work, never lie about it: an op the client
  /// saw acknowledged while every recorded attempt was shed (zero
  /// executions) means a pushback was converted into a success somewhere.
  /// A shed attempt followed by a successfully executed retry is
  /// legitimate and does not trip this.
  void check_no_acked_shed();

  /// Frame accounting: injected corruption must be fully absorbed by the
  /// drop paths — dropped_corrupt plus frames that died of loss/partition/
  /// no-endpoint before the integrity check.  A shortfall means a mangled
  /// frame reached an Endpoint.
  void check_corruption_contained(const net::NetworkStats& stats,
                                  std::uint64_t injected_corrupt);

  /// Zero acked-broadcast loss: every broadcast the group committed must
  /// be present in every surviving member's delivered set — the failover
  /// replay contract.  (With replay disabled, stats().failover_lost
  /// quantifies exactly the messages that trip this.)
  void check_acked_broadcasts_delivered();

  /// Exactly one active coordinator: among the recorded coordinator
  /// instances, precisely one may end the run active — two means a split
  /// brain (both sides installing views), zero means the primary
  /// partition failed to elect.  No-op when none were recorded.
  void check_single_active_coordinator();

  /// View ids must be strictly monotone at every member, across any
  /// number of failovers — a promoted coordinator resuming below a
  /// survivor's installed id would silently roll membership back.
  void check_views_monotone();

  /// Log compaction must bound durable-log growth: @p max_observed_bytes
  /// (the largest synced WAL ever seen on @p replica, peak — not final —
  /// size) must stay within @p cap_bytes.  The cap is the checkpoint
  /// trigger threshold plus one group-commit batch of slack; exceeding it
  /// means checkpointing fell behind sustained writes.
  void check_log_bounded(const std::string& replica,
                         std::size_t max_observed_bytes,
                         std::size_t cap_bytes);

  /// Runs every state-based check (not corruption containment, which
  /// needs the network counters).
  void check_all();

  /// Feeds a harness-side custom check's failure into the same pool, so
  /// one ok()/violations() verdict covers built-in and bespoke checks.
  void report_violation(std::string what) { violation(std::move(what)); }

  // --- outcome -------------------------------------------------------------

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  void clear();

 private:
  void violation(std::string what) { violations_.push_back(std::move(what)); }

  std::map<std::string, std::uint64_t> executions_;
  std::map<std::string, std::uint64_t> sheds_;
  std::map<std::string, bool> acknowledged_;
  std::map<std::string, bool> applied_;
  std::map<std::string, std::string> digests_;
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> views_;
  std::map<std::string, bool> acked_broadcasts_;
  std::map<std::string, std::set<std::string>> delivered_broadcasts_;
  std::vector<std::pair<std::string, bool>> coordinators_;
  std::map<std::string, std::vector<std::uint64_t>> installed_;
  std::vector<std::string> violations_;
};

/// Mines recovery latencies from a trace snapshot: each Category::kFault
/// "recovered" event (emitted by a harness when it first observes healthy
/// service again) is paired with the most recent preceding unconsumed
/// outage-end event ("restart" or "heal"), and the deltas are returned in
/// trace order.  Feed them to a Summary for percentiles.
[[nodiscard]] std::vector<sim::Duration> recovery_latencies(
    const std::vector<obs::TraceEvent>& events);

}  // namespace coop::fault
