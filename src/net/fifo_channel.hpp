// Reliable, in-order, point-to-point message channel (TCP-lite) over the
// lossy, reordering datagram fabric.
//
// Several coop protocols — most importantly the OT editor, whose Jupiter
// links require FIFO channels — need per-peer ordered delivery.  One
// FifoChannel endpoint multiplexes any number of peers: per-peer send
// sequence numbers with retransmission until cumulatively acknowledged,
// and a per-peer receive hold-back queue that releases messages strictly
// in order with duplicate suppression.
//
// Crash-restart resynchronization: every frame carries the sender's
// stream *epoch*.  A restarted process constructs its replacement channel
// with a higher FifoConfig::epoch and calls resync() toward each known
// peer; the kHello it sends makes the survivor reset its receive cursor
// AND renumber its own unacknowledged backlog under a fresh epoch (the
// restarted peer lost its receive state, so old sequence numbers are
// meaningless to it).  A data frame with a bumped epoch resets the
// receive cursor only — it means "this stream was renumbered", not "the
// peer lost its receive state" — which is what keeps two channels from
// ping-ponging epoch bumps at each other.  Residual UDP-era window:
// frames of a dead incarnation still in flight during the handshake can
// be delivered once before the epoch bump lands; applications needing
// cross-restart exactly-once must be idempotent (the same contract as
// the RPC replay cache's per-incarnation at-most-once).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/network.hpp"
#include "net/overload.hpp"
#include "sim/simulator.hpp"

namespace coop::net {

struct FifoConfig {
  sim::Duration retransmit_timeout = sim::msec(60);
  /// Backoff doubles the timeout per consecutive silent retry, up to
  /// this cap — so a partition costs bounded chatter, not give-up.
  sim::Duration max_retransmit_timeout = sim::sec(3);
  /// < 0 means never give up (the default: a reliable FIFO stream that
  /// drops a message is broken forever, so persistence is the only
  /// sensible default; bound it only when the application can cope).
  /// Unbounded *retries* are safe because the backlog is no longer
  /// unbounded: max_unacked caps memory and on_peer_unreachable surfaces
  /// the condition, so persistence costs bounded state + bounded chatter.
  int max_retransmits = -1;
  /// Cap on the per-peer unacknowledged backlog.  Sends beyond it are
  /// tail-dropped (counted in FifoStats::overflow_dropped) instead of
  /// growing the queue without bound while a peer is unreachable.
  /// 0 = unbounded (the pre-overload-plane behaviour).
  std::size_t max_unacked = 256;
  /// Consecutive silent retransmit rounds after which the peer is
  /// reported unreachable via the on_peer_unreachable callback (once per
  /// episode; any ack progress re-arms it).  0 disables the report.
  int unreachable_after = 8;
  /// Retry budget gating retransmit *rounds* (the same token-bucket
  /// abstraction RpcClient uses): each go-back-N round spends a token,
  /// each acked frame earns `ratio`.  Disabled by default.
  RetryBudgetConfig retry_budget{};
  /// Deterministic, seeded retransmit jitter: each armed timeout is
  /// scaled by a uniform draw from [1 - jitter, 1 + jitter] out of the
  /// simulator's stream, so peers that heal at the same instant do not
  /// retransmit in lock-step (retry storms).  0 keeps exact backoff.
  double backoff_jitter = 0.0;
  /// Stream incarnation stamped on every frame this endpoint sends.
  /// Bump it (and call resync()) when constructing the replacement
  /// channel of a restarted process.
  std::uint32_t epoch = 1;
};

struct FifoStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t resyncs = 0;  ///< receive cursors reset by an epoch bump
  std::uint64_t stale = 0;    ///< frames of a dead incarnation dropped
  std::uint64_t overflow_dropped = 0;  ///< sends refused: backlog at cap
  std::uint64_t budget_denied = 0;     ///< retransmit rounds budget-dry
  std::uint64_t unreachable_events = 0;  ///< kPeerUnreachable reports
};

/// One endpoint of (any number of) reliable ordered channels.
class FifoChannel : public Endpoint {
 public:
  using ReceiveFn =
      std::function<void(const Address& from, const std::string& payload)>;
  /// Fired once per unreachability episode, after
  /// FifoConfig::unreachable_after consecutive silent retransmit rounds
  /// toward @p peer; re-armed by any ack progress.
  using UnreachableFn = std::function<void(const Address& peer)>;

  FifoChannel(Network& net, Address self, FifoConfig config = {});
  ~FifoChannel() override;

  FifoChannel(const FifoChannel&) = delete;
  FifoChannel& operator=(const FifoChannel&) = delete;

  /// Queues @p payload for in-order delivery at @p peer.
  void send(const Address& peer, std::string payload);

  /// Announces this (re)started endpoint to @p peer with a kHello carrying
  /// our epoch.  The hello is retried on the retransmit timer until the
  /// peer acknowledges the epoch, so a lost hello only delays
  /// resynchronization.  Call once per known peer after a restart.
  void resync(const Address& peer);

  void on_receive(ReceiveFn fn) { receive_ = std::move(fn); }
  void on_peer_unreachable(UnreachableFn fn) {
    unreachable_ = std::move(fn);
  }

  [[nodiscard]] Address self() const noexcept { return self_; }
  [[nodiscard]] const FifoStats& stats() const noexcept { return stats_; }
  /// Messages sent to @p peer not yet acknowledged.
  [[nodiscard]] std::size_t unacked(const Address& peer) const;

  void on_message(const Message& msg) override;

 private:
  /// One unacknowledged frame.  The encoded wire Buf is shared with every
  /// in-flight (re)transmission of the frame — retransmits re-send the
  /// same allocation instead of re-encoding — while the raw payload is
  /// kept for the one case that must re-encode: an epoch resync, which
  /// renumbers the backlog under new sequence numbers.
  struct Backlog {
    std::string payload;
    util::Buf wire;
  };

  struct PeerState {
    // Sender side.
    std::uint32_t send_epoch = 1;
    std::uint64_t next_send_seq = 1;
    std::map<std::uint64_t, Backlog> unacked;  // seq -> frame
    sim::EventId timer = sim::kInvalidEvent;
    int retries = 0;
    bool hello_pending = false;
    RetryBudget budget;  ///< gates retransmit rounds (see FifoConfig)
    bool unreachable_reported = false;  ///< this episode already reported
    // Receiver side.
    std::uint32_t remote_epoch = 0;  // 0 = nothing seen yet
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, std::string> holdback;  // ooo arrivals
  };

  PeerState& peer_state(const Address& peer);
  /// Encodes one kData frame into a shareable wire buffer.
  util::Buf encode_frame(std::uint32_t epoch, std::uint64_t seq,
                         std::string_view payload);
  void send_hello(const Address& peer);
  void arm_timer(const Address& peer);
  void send_ack(const Address& peer, std::uint32_t epoch,
                std::uint64_t cumulative);
  /// Receive-side epoch handling; returns false if the frame is stale.
  bool observe_epoch(PeerState& state, std::uint32_t epoch);
  /// Renumbers the unacked backlog under a fresh epoch and retransmits
  /// (the peer restarted and lost its receive state).
  void resync_send(const Address& peer, PeerState& state);

  Network& net_;
  Address self_;
  FifoConfig config_;
  std::map<Address, PeerState> peers_;
  ReceiveFn receive_;
  UnreachableFn unreachable_;
  FifoStats stats_;
};

}  // namespace coop::net
