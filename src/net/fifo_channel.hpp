// Reliable, in-order, point-to-point message channel (TCP-lite) over the
// lossy, reordering datagram fabric.
//
// Several coop protocols — most importantly the OT editor, whose Jupiter
// links require FIFO channels — need per-peer ordered delivery.  One
// FifoChannel endpoint multiplexes any number of peers: per-peer send
// sequence numbers with retransmission until cumulatively acknowledged,
// and a per-peer receive hold-back queue that releases messages strictly
// in order with duplicate suppression.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace coop::net {

struct FifoConfig {
  sim::Duration retransmit_timeout = sim::msec(60);
  /// Backoff doubles the timeout per consecutive silent retry, up to
  /// this cap — so a partition costs bounded chatter, not give-up.
  sim::Duration max_retransmit_timeout = sim::sec(3);
  /// < 0 means never give up (the default: a reliable FIFO stream that
  /// drops a message is broken forever, so persistence is the only
  /// sensible default; bound it only when the application can cope).
  int max_retransmits = -1;
};

struct FifoStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t gave_up = 0;
};

/// One endpoint of (any number of) reliable ordered channels.
class FifoChannel : public Endpoint {
 public:
  using ReceiveFn =
      std::function<void(const Address& from, const std::string& payload)>;

  FifoChannel(Network& net, Address self, FifoConfig config = {});
  ~FifoChannel() override;

  FifoChannel(const FifoChannel&) = delete;
  FifoChannel& operator=(const FifoChannel&) = delete;

  /// Queues @p payload for in-order delivery at @p peer.
  void send(const Address& peer, std::string payload);

  void on_receive(ReceiveFn fn) { receive_ = std::move(fn); }

  [[nodiscard]] Address self() const noexcept { return self_; }
  [[nodiscard]] const FifoStats& stats() const noexcept { return stats_; }
  /// Messages sent to @p peer not yet acknowledged.
  [[nodiscard]] std::size_t unacked(const Address& peer) const;

  void on_message(const Message& msg) override;

 private:
  struct PeerState {
    // Sender side.
    std::uint64_t next_send_seq = 1;
    std::map<std::uint64_t, std::string> unacked;  // seq -> wire payload
    sim::EventId timer = sim::kInvalidEvent;
    int retries = 0;
    // Receiver side.
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, std::string> holdback;  // ooo arrivals
  };

  void transmit(const Address& peer, std::uint64_t seq,
                const std::string& wire);
  void arm_timer(const Address& peer);
  void send_ack(const Address& peer, std::uint64_t cumulative);

  Network& net_;
  Address self_;
  FifoConfig config_;
  std::map<Address, PeerState> peers_;
  ReceiveFn receive_;
  FifoStats stats_;
};

}  // namespace coop::net
