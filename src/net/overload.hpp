// Client-side overload control primitives shared by every retrying layer:
// retry token budgets and circuit breakers.
//
// A burst of timeouts is ambiguous — it may be loss (retry helps) or
// saturation (retry makes it worse).  The classic metastable-failure shape
// is a fleet of clients whose retries multiply offered load exactly when
// the servers can least afford it.  Two complementary guards bound that
// amplification:
//
//   * RetryBudget — a token bucket in which successful calls earn fractions
//     of a token and each retry spends a whole one, capping sustained retry
//     traffic at a configurable fraction of successful traffic.  When the
//     destination stops succeeding, the budget drains and retries stop;
//     first attempts still flow, so recovery is probed at the offered rate
//     rather than a multiple of it.
//   * CircuitBreaker — after N consecutive failures the breaker opens and
//     calls fast-fail locally (Status::kRejected) without touching the
//     wire; after a cooldown it half-opens and admits a single probe whose
//     outcome decides between closing and re-opening.
//
// RpcClient keeps one of each per destination; GroupInvoker inherits them
// by issuing through RpcClient; FifoChannel keeps a RetryBudget per peer so
// go-back-N retransmit storms are bounded by the same abstraction.  Both
// guards are pure sim-time state machines — deterministic under the seeded
// kernel, no wall clock anywhere.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace coop::net {

/// Token-bucket retry budget.  Disabled by default so existing callers
/// keep their unconditional-retry behaviour until they opt in.
struct RetryBudgetConfig {
  bool enabled = false;
  /// Tokens earned per successful call (0.1 = retries capped at ~10% of
  /// the success rate, the classic retry-budget ratio).
  double ratio = 0.1;
  /// Tokens available before any call has succeeded — lets a cold client
  /// ride out genuine packet loss without first earning credit.
  double initial = 10.0;
  /// Accumulation cap, so a long healthy stretch cannot bank an
  /// arbitrarily large burst of future retries.
  double cap = 100.0;
};

class RetryBudget {
 public:
  RetryBudget() : RetryBudget(RetryBudgetConfig{}) {}
  explicit RetryBudget(const RetryBudgetConfig& config)
      : config_(config), tokens_(config.initial) {}

  /// A call to the destination succeeded: earn `ratio` of a token.
  void on_success() noexcept {
    tokens_ = std::min(config_.cap, tokens_ + config_.ratio);
  }

  /// Asks permission to retry.  Spends one token; returns false (and
  /// spends nothing) when the bucket is dry.  Always true when disabled.
  [[nodiscard]] bool try_spend() noexcept {
    if (!config_.enabled) return true;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] double tokens() const noexcept { return tokens_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

 private:
  RetryBudgetConfig config_;
  double tokens_ = 0;
};

/// Consecutive-failure circuit breaker with a half-open probe.  Disabled
/// by default (allow() is then always true and no state is kept hot).
struct CircuitBreakerConfig {
  bool enabled = false;
  /// Consecutive failures (timeouts or pushback) that open the breaker.
  int failure_threshold = 5;
  /// How long the breaker stays open before half-opening for one probe.
  sim::Duration open_duration = sim::msec(500);
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  CircuitBreaker() : CircuitBreaker(CircuitBreakerConfig{}) {}
  explicit CircuitBreaker(const CircuitBreakerConfig& config)
      : config_(config) {}

  /// May a call be issued now?  Open: fast-fail until the cooldown
  /// elapses, then admit exactly one half-open probe; further calls keep
  /// fast-failing until the probe resolves.
  [[nodiscard]] bool allow(sim::TimePoint now) noexcept {
    if (!config_.enabled) return true;
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (now < open_until_) return false;
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      case State::kHalfOpen:
        if (probe_in_flight_) return false;
        probe_in_flight_ = true;
        return true;
    }
    return true;
  }

  /// A call completed successfully: close (and reset the failure run).
  void record_success() noexcept {
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    state_ = State::kClosed;
  }

  /// A call timed out or was pushed back.  In half-open the single probe
  /// failing re-opens immediately; closed opens at the threshold.
  void record_failure(sim::TimePoint now) noexcept {
    if (!config_.enabled) return;
    ++consecutive_failures_;
    probe_in_flight_ = false;
    if (state_ == State::kHalfOpen ||
        consecutive_failures_ >= config_.failure_threshold) {
      state_ = State::kOpen;
      open_until_ = now + config_.open_duration;
    }
  }

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] int consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

 private:
  CircuitBreakerConfig config_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  sim::TimePoint open_until_ = 0;
};

}  // namespace coop::net
