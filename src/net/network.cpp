#include "net/network.hpp"

#include <utility>

namespace coop::net {

Network::Network(sim::Simulator& sim, obs::Obs* obs) : sim_(sim) {
  if (obs == nullptr) obs = obs::default_obs();
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Obs>();
    obs = owned_obs_.get();
  }
  obs_ = obs;
  auto& m = obs_->metrics;
  sent_ = &m.counter("net.sent");
  delivered_ = &m.counter("net.delivered");
  dropped_loss_ = &m.counter("net.dropped_loss");
  dropped_partition_ = &m.counter("net.dropped_partition");
  dropped_no_endpoint_ = &m.counter("net.dropped_no_endpoint");
  dropped_corrupt_ = &m.counter("net.dropped_corrupt");
  bytes_sent_ = &m.counter("net.bytes_sent");
  ts_delivered_ = obs_->series.series("net.delivered");
  ts_dropped_ = obs_->series.series("net.dropped");
  prof_deliver_ = obs_->profiler.site("net.deliver", obs::Category::kNet);
}

void Network::restart(NodeId node) {
  crashed_.erase(node);
  // The rebooted node's outbound serializers hold no backlog: whatever was
  // queued on its NICs died with the process.
  for (auto& [k, state] : link_states_) {
    if (static_cast<NodeId>(k >> 32) == node) state.busy_until = 0;
  }
}

NetworkStats Network::stats() const noexcept {
  return NetworkStats{
      .sent = sent_->value(),
      .delivered = delivered_->value(),
      .dropped_loss = dropped_loss_->value(),
      .dropped_partition = dropped_partition_->value(),
      .dropped_no_endpoint = dropped_no_endpoint_->value(),
      .dropped_corrupt = dropped_corrupt_->value(),
      .bytes_sent = bytes_sent_->value(),
  };
}

void Network::partition(const std::set<NodeId>& side_a,
                        const std::set<NodeId>& side_b) {
  partitioned_ = true;
  side_a_ = side_a;
  side_b_ = side_b;
}

bool Network::partition_blocks(NodeId a, NodeId b) const {
  if (!partitioned_) return false;
  const bool a_in_a = side_a_.count(a) != 0;
  const bool b_in_a = side_a_.count(b) != 0;
  if (side_b_.empty()) {
    // side_b is the complement: blocked iff the nodes straddle the cut.
    return a_in_a != b_in_a;
  }
  const bool a_in_b = side_b_.count(a) != 0;
  const bool b_in_b = side_b_.count(b) != 0;
  return (a_in_a && b_in_b) || (a_in_b && b_in_a);
}

std::optional<LinkModel> Network::effective_link(NodeId from,
                                                 NodeId to) const {
  const Connectivity cf = connectivity(from);
  const Connectivity ct = connectivity(to);
  if (cf == Connectivity::kDisconnected || ct == Connectivity::kDisconnected)
    return std::nullopt;
  if (cf == Connectivity::kPartial || ct == Connectivity::kPartial)
    return radio_model_;
  return link(from, to);
}

std::uint64_t Network::send(Message msg) {
  msg.id = next_msg_id_++;
  msg.sent_at = sim_.now();
  if (msg.wire_size == 0)
    msg.wire_size = msg.payload.size() + Message::kHeaderBytes;
  msg.checksum = frame_checksum(msg.payload);
  transmit(std::move(msg));
  return next_msg_id_ - 1;
}

std::uint64_t Network::multicast(McastId group, Message msg) {
  msg.multicast = true;
  msg.group = group;
  msg.sent_at = sim_.now();
  if (msg.wire_size == 0)
    msg.wire_size = msg.payload.size() + Message::kHeaderBytes;
  msg.checksum = frame_checksum(msg.payload);
  const std::uint64_t id = next_msg_id_++;
  msg.id = id;
  auto it = mcast_groups_.find(group);
  if (it == mcast_groups_.end()) return id;
  // Snapshot membership: joins/leaves during transit do not affect copies
  // already in flight (matching IP multicast behaviour).
  const std::set<Address> members = it->second;
  for (const Address& member : members) {
    if (member == msg.src) continue;
    Message copy = msg;
    copy.dst = member;
    transmit(std::move(copy));
  }
  return id;
}

void Network::transmit(Message msg, bool injectable) {
  sent_->inc();
  bytes_sent_->inc(msg.wire_size);

  const NodeId from = msg.src.node;
  const NodeId to = msg.dst.node;
  obs::Tracer& tracer = obs_->tracer;
  // Each hop gets a child span of whatever the sending layer stamped, so
  // drops and deliveries hang off the protocol action that caused them.
  if (msg.ctx.valid()) msg.ctx = msg.ctx.child(tracer.mint_id());
  tracer.event(sim_.now(), obs::Category::kNet, "send", msg.ctx,
               {{"src", static_cast<double>(from)},
                {"dst", static_cast<double>(to)},
                {"bytes", static_cast<double>(msg.wire_size)}});

  if (is_crashed(from) || is_crashed(to) || partition_blocks(from, to)) {
    dropped_partition_->inc();
    obs_->series.count(ts_dropped_, sim_.now());
    tracer.event(sim_.now(), obs::Category::kNet, "drop_partition", msg.ctx,
                 {{"src", static_cast<double>(from)},
                  {"dst", static_cast<double>(to)}});
    return;
  }
  const std::optional<LinkModel> model = effective_link(from, to);
  if (!model) {
    dropped_partition_->inc();
    obs_->series.count(ts_dropped_, sim_.now());
    tracer.event(sim_.now(), obs::Category::kNet, "drop_partition", msg.ctx,
                 {{"src", static_cast<double>(from)},
                  {"dst", static_cast<double>(to)}});
    return;
  }
  // The link-state entry is materialized only past the crash/partition
  // checks: a frame a dead or partitioned source never put on the wire
  // must not grow link_states_ or perturb that link's counters.  (Loss
  // below still counts per-link — the frame did occupy the link.)
  auto& state = link_states_[key(from, to)];
  const double loss = model->loss + disturbance_.extra_loss;
  if (loss > 0 && sim_.rng().bernoulli(loss)) {
    dropped_loss_->inc();
    obs_->series.count(ts_dropped_, sim_.now());
    ++state.dropped;
    tracer.event(sim_.now(), obs::Category::kNet, "drop_loss", msg.ctx,
                 {{"src", static_cast<double>(from)},
                  {"dst", static_cast<double>(to)}});
    return;
  }

  // Per-datagram fault injection.  The duplicate copy is snapshot before
  // corruption, so a corrupted original and its clean duplicate model the
  // common real-world case (one of N copies mangled in flight); the copy
  // is transmitted with injectable=false so duplication cannot cascade.
  InjectDecision inject;
  if (injectable && inject_) inject = inject_(msg);
  std::optional<Message> dup;
  if (inject.duplicate) dup = msg;

  // Serialization/queueing: the sender's serializer for this directed link
  // is busy until `busy_until`; a new datagram queues behind it.  This is
  // the mechanism that lets cross-traffic congest a stream (experiment E6).
  const sim::TimePoint start = std::max(sim_.now(), state.busy_until);
  const sim::Duration queue_wait = start - sim_.now();
  const sim::Duration ser = model->serialize_time(msg.wire_size);
  state.busy_until = start + ser;
  ++state.sent;
  state.bytes += msg.wire_size;

  sim::TimePoint arrival = state.busy_until + model->propagation(sim_.rng());
  if (disturbance_.active()) {
    sim::Duration extra = disturbance_.extra_latency;
    if (disturbance_.extra_jitter > 0) {
      extra += static_cast<sim::Duration>(sim_.rng().uniform(
          -static_cast<double>(disturbance_.extra_jitter),
          static_cast<double>(disturbance_.extra_jitter)));
    }
    if (extra > 0) arrival += extra;
  }
  if (inject.extra_delay > 0) arrival += inject.extra_delay;
  if (inject.corrupt) {
    // Flip one payload byte (or mangle the stamped checksum of an empty
    // frame) *after* the checksum was stamped: the frame now fails
    // integrity verification at arrival.  mutate_byte clones shared
    // storage first, so the sender's retransmit backlog and the other
    // multicast legs keep the clean bytes.
    if (!msg.payload.empty()) {
      const auto pos = static_cast<std::size_t>(sim_.rng().uniform_int(
          0, static_cast<std::int64_t>(msg.payload.size()) - 1));
      msg.payload.mutate_byte(pos, 0xA5);
    } else {
      msg.checksum ^= 0xA5;
    }
  }

  schedule_delivery(arrival, std::move(msg), queue_wait);

  if (dup) transmit(std::move(*dup), false);
}

std::uint32_t Network::acquire_dslot(Message&& msg, sim::Duration queue_wait) {
  if (dfree_.empty()) {
    dslots_.push_back(DeliverySlot{std::move(msg), queue_wait, kNoSlot});
    return static_cast<std::uint32_t>(dslots_.size() - 1);
  }
  const std::uint32_t slot = dfree_.back();
  dfree_.pop_back();
  DeliverySlot& d = dslots_[slot];
  d.msg = std::move(msg);
  d.queue_wait = queue_wait;
  d.next = kNoSlot;
  return slot;
}

Network::DeliverySlot Network::take_dslot(std::uint32_t slot) {
  // Move out by value: the delivery handler may transmit() and grow the
  // pool, invalidating any reference into dslots_.
  DeliverySlot d = std::move(dslots_[slot]);
  dslots_[slot].next = kNoSlot;
  dfree_.push_back(slot);
  return d;
}

void Network::schedule_delivery(sim::TimePoint arrival, Message&& msg,
                                sim::Duration queue_wait) {
  const std::uint64_t link = key(msg.src.node, msg.dst.node);
  const std::uint32_t slot = acquire_dslot(std::move(msg), queue_wait);
  if (!coalesce_) {
    sim_.schedule_at(arrival, [this, slot] {
      DeliverySlot d = take_dslot(slot);
      deliver(d.msg, d.queue_wait);
    });
    return;
  }
  // Coalescing: append to the link's open batch when the arrival matches,
  // otherwise open a new batch (superseding the old map entry; the old
  // batch still fires from its own event).
  auto it = open_batch_.find(link);
  if (it != open_batch_.end() && batches_[it->second].at == arrival) {
    Batch& b = batches_[it->second];
    dslots_[b.tail].next = slot;
    b.tail = slot;
    ++coalesced_;
    return;
  }
  std::uint32_t bi;
  if (bfree_.empty()) {
    batches_.push_back(Batch{arrival, link, slot, slot});
    bi = static_cast<std::uint32_t>(batches_.size() - 1);
  } else {
    bi = bfree_.back();
    bfree_.pop_back();
    batches_[bi] = Batch{arrival, link, slot, slot};
  }
  open_batch_[link] = bi;
  sim_.schedule_at(arrival, [this, bi] { fire_batch(bi); });
}

void Network::fire_batch(std::uint32_t batch) {
  // Close the batch before delivering: handlers may transmit() on this
  // link, which must open a fresh batch rather than append to a firing
  // one (and batches_ may grow, so copy what we need out first).
  const std::uint64_t link = batches_[batch].link;
  std::uint32_t s = batches_[batch].head;
  auto it = open_batch_.find(link);
  if (it != open_batch_.end() && it->second == batch) open_batch_.erase(it);
  bfree_.push_back(batch);
  while (s != kNoSlot) {
    const std::uint32_t next = dslots_[s].next;
    DeliverySlot d = take_dslot(s);
    deliver(d.msg, d.queue_wait);
    s = next;
  }
}

void Network::deliver(Message& msg, sim::Duration queue_wait) {
  // Faults are re-checked at arrival: a crash or disconnection that
  // happened while the datagram was in flight still loses it.
  if (is_crashed(msg.dst.node) ||
      connectivity(msg.dst.node) == Connectivity::kDisconnected ||
      partition_blocks(msg.src.node, msg.dst.node)) {
    dropped_partition_->inc();
    obs_->series.count(ts_dropped_, sim_.now());
    obs_->tracer.event(sim_.now(), obs::Category::kNet, "drop_partition",
                       msg.ctx,
                       {{"src", static_cast<double>(msg.src.node)},
                        {"dst", static_cast<double>(msg.dst.node)}});
    return;
  }
  // Integrity verification at the receiving NIC, before demux: a frame
  // whose payload no longer matches its stamped checksum is dropped
  // here — corrupt bytes never reach an Endpoint handler.
  if (msg.checksum != frame_checksum(msg.payload)) {
    dropped_corrupt_->inc();
    obs_->series.count(ts_dropped_, sim_.now());
    obs_->tracer.event(sim_.now(), obs::Category::kNet, "drop_corrupt",
                       msg.ctx,
                       {{"src", static_cast<double>(msg.src.node)},
                        {"dst", static_cast<double>(msg.dst.node)}});
    return;
  }
  auto it = endpoints_.find(msg.dst);
  if (it == endpoints_.end()) {
    dropped_no_endpoint_->inc();
    obs_->series.count(ts_dropped_, sim_.now());
    obs_->tracer.event(sim_.now(), obs::Category::kNet, "drop_no_endpoint",
                       msg.ctx,
                       {{"dst", static_cast<double>(msg.dst.node)}});
    return;
  }
  delivered_->inc();
  obs_->series.count(ts_delivered_, sim_.now());
  // The `queue` attribute splits the hop for the critical-path
  // analyzer: dur = queueing behind the serializer + link time.
  if (msg.ctx.valid()) msg.ctx = msg.ctx.child(obs_->tracer.mint_id());
  obs_->tracer.span(msg.sent_at, sim_.now(), obs::Category::kNet, "deliver",
                    msg.ctx,
                    {{"src", static_cast<double>(msg.src.node)},
                     {"dst", static_cast<double>(msg.dst.node)},
                     {"bytes", static_cast<double>(msg.wire_size)},
                     {"queue", static_cast<double>(queue_wait)}});
  obs::ProfScope prof(obs_->profiler, prof_deliver_);
  it->second->on_message(msg);
}

}  // namespace coop::net
