#include "net/network.hpp"

#include <utility>

namespace coop::net {

Network::Network(sim::Simulator& sim, obs::Obs* obs) : sim_(sim) {
  if (obs == nullptr) obs = obs::default_obs();
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Obs>();
    obs = owned_obs_.get();
  }
  obs_ = obs;
  auto& m = obs_->metrics;
  sent_ = &m.counter("net.sent");
  delivered_ = &m.counter("net.delivered");
  dropped_loss_ = &m.counter("net.dropped_loss");
  dropped_partition_ = &m.counter("net.dropped_partition");
  dropped_no_endpoint_ = &m.counter("net.dropped_no_endpoint");
  dropped_corrupt_ = &m.counter("net.dropped_corrupt");
  bytes_sent_ = &m.counter("net.bytes_sent");
}

void Network::restart(NodeId node) {
  crashed_.erase(node);
  // The rebooted node's outbound serializers hold no backlog: whatever was
  // queued on its NICs died with the process.
  for (auto& [k, state] : link_states_) {
    if (static_cast<NodeId>(k >> 32) == node) state.busy_until = 0;
  }
}

NetworkStats Network::stats() const noexcept {
  return NetworkStats{
      .sent = sent_->value(),
      .delivered = delivered_->value(),
      .dropped_loss = dropped_loss_->value(),
      .dropped_partition = dropped_partition_->value(),
      .dropped_no_endpoint = dropped_no_endpoint_->value(),
      .dropped_corrupt = dropped_corrupt_->value(),
      .bytes_sent = bytes_sent_->value(),
  };
}

void Network::partition(const std::set<NodeId>& side_a,
                        const std::set<NodeId>& side_b) {
  partitioned_ = true;
  side_a_ = side_a;
  side_b_ = side_b;
}

bool Network::partition_blocks(NodeId a, NodeId b) const {
  if (!partitioned_) return false;
  const bool a_in_a = side_a_.count(a) != 0;
  const bool b_in_a = side_a_.count(b) != 0;
  if (side_b_.empty()) {
    // side_b is the complement: blocked iff the nodes straddle the cut.
    return a_in_a != b_in_a;
  }
  const bool a_in_b = side_b_.count(a) != 0;
  const bool b_in_b = side_b_.count(b) != 0;
  return (a_in_a && b_in_b) || (a_in_b && b_in_a);
}

std::optional<LinkModel> Network::effective_link(NodeId from,
                                                 NodeId to) const {
  const Connectivity cf = connectivity(from);
  const Connectivity ct = connectivity(to);
  if (cf == Connectivity::kDisconnected || ct == Connectivity::kDisconnected)
    return std::nullopt;
  if (cf == Connectivity::kPartial || ct == Connectivity::kPartial)
    return radio_model_;
  return link(from, to);
}

std::uint64_t Network::send(Message msg) {
  msg.id = next_msg_id_++;
  msg.sent_at = sim_.now();
  if (msg.wire_size == 0)
    msg.wire_size = msg.payload.size() + Message::kHeaderBytes;
  msg.checksum = frame_checksum(msg.payload);
  transmit(std::move(msg));
  return next_msg_id_ - 1;
}

std::uint64_t Network::multicast(McastId group, Message msg) {
  msg.multicast = true;
  msg.group = group;
  msg.sent_at = sim_.now();
  if (msg.wire_size == 0)
    msg.wire_size = msg.payload.size() + Message::kHeaderBytes;
  msg.checksum = frame_checksum(msg.payload);
  const std::uint64_t id = next_msg_id_++;
  msg.id = id;
  auto it = mcast_groups_.find(group);
  if (it == mcast_groups_.end()) return id;
  // Snapshot membership: joins/leaves during transit do not affect copies
  // already in flight (matching IP multicast behaviour).
  const std::set<Address> members = it->second;
  for (const Address& member : members) {
    if (member == msg.src) continue;
    Message copy = msg;
    copy.dst = member;
    transmit(std::move(copy));
  }
  return id;
}

void Network::transmit(Message msg, bool injectable) {
  sent_->inc();
  bytes_sent_->inc(msg.wire_size);

  const NodeId from = msg.src.node;
  const NodeId to = msg.dst.node;
  auto& state = link_states_[key(from, to)];
  obs::Tracer& tracer = obs_->tracer;
  // Each hop gets a child span of whatever the sending layer stamped, so
  // drops and deliveries hang off the protocol action that caused them.
  if (msg.ctx.valid()) msg.ctx = msg.ctx.child(tracer.mint_id());
  tracer.event(sim_.now(), obs::Category::kNet, "send", msg.ctx,
               {{"src", static_cast<double>(from)},
                {"dst", static_cast<double>(to)},
                {"bytes", static_cast<double>(msg.wire_size)}});

  if (is_crashed(from) || is_crashed(to) || partition_blocks(from, to)) {
    dropped_partition_->inc();
    ++state.dropped;
    tracer.event(sim_.now(), obs::Category::kNet, "drop_partition", msg.ctx,
                 {{"src", static_cast<double>(from)},
                  {"dst", static_cast<double>(to)}});
    return;
  }
  const std::optional<LinkModel> model = effective_link(from, to);
  if (!model) {
    dropped_partition_->inc();
    ++state.dropped;
    tracer.event(sim_.now(), obs::Category::kNet, "drop_partition", msg.ctx,
                 {{"src", static_cast<double>(from)},
                  {"dst", static_cast<double>(to)}});
    return;
  }
  const double loss = model->loss + disturbance_.extra_loss;
  if (loss > 0 && sim_.rng().bernoulli(loss)) {
    dropped_loss_->inc();
    ++state.dropped;
    tracer.event(sim_.now(), obs::Category::kNet, "drop_loss", msg.ctx,
                 {{"src", static_cast<double>(from)},
                  {"dst", static_cast<double>(to)}});
    return;
  }

  // Per-datagram fault injection.  The duplicate copy is snapshot before
  // corruption, so a corrupted original and its clean duplicate model the
  // common real-world case (one of N copies mangled in flight); the copy
  // is transmitted with injectable=false so duplication cannot cascade.
  InjectDecision inject;
  if (injectable && inject_) inject = inject_(msg);
  std::optional<Message> dup;
  if (inject.duplicate) dup = msg;

  // Serialization/queueing: the sender's serializer for this directed link
  // is busy until `busy_until`; a new datagram queues behind it.  This is
  // the mechanism that lets cross-traffic congest a stream (experiment E6).
  const sim::TimePoint start = std::max(sim_.now(), state.busy_until);
  const sim::Duration queue_wait = start - sim_.now();
  const sim::Duration ser = model->serialize_time(msg.wire_size);
  state.busy_until = start + ser;
  ++state.sent;
  state.bytes += msg.wire_size;

  sim::TimePoint arrival = state.busy_until + model->propagation(sim_.rng());
  if (disturbance_.active()) {
    sim::Duration extra = disturbance_.extra_latency;
    if (disturbance_.extra_jitter > 0) {
      extra += static_cast<sim::Duration>(sim_.rng().uniform(
          -static_cast<double>(disturbance_.extra_jitter),
          static_cast<double>(disturbance_.extra_jitter)));
    }
    if (extra > 0) arrival += extra;
  }
  if (inject.extra_delay > 0) arrival += inject.extra_delay;
  if (inject.corrupt) {
    // Flip one payload byte (or mangle the stamped checksum of an empty
    // frame) *after* the checksum was stamped: the frame now fails
    // integrity verification at arrival.
    if (!msg.payload.empty()) {
      const auto pos = static_cast<std::size_t>(sim_.rng().uniform_int(
          0, static_cast<std::int64_t>(msg.payload.size()) - 1));
      msg.payload[pos] = static_cast<char>(msg.payload[pos] ^ 0xA5);
    } else {
      msg.checksum ^= 0xA5;
    }
  }

  sim_.schedule_at(arrival, [this, queue_wait,
                             msg = std::move(msg)]() mutable {
    // Faults are re-checked at arrival: a crash or disconnection that
    // happened while the datagram was in flight still loses it.
    if (is_crashed(msg.dst.node) ||
        connectivity(msg.dst.node) == Connectivity::kDisconnected ||
        partition_blocks(msg.src.node, msg.dst.node)) {
      dropped_partition_->inc();
      obs_->tracer.event(sim_.now(), obs::Category::kNet, "drop_partition",
                         msg.ctx,
                         {{"src", static_cast<double>(msg.src.node)},
                          {"dst", static_cast<double>(msg.dst.node)}});
      return;
    }
    // Integrity verification at the receiving NIC, before demux: a frame
    // whose payload no longer matches its stamped checksum is dropped
    // here — corrupt bytes never reach an Endpoint handler.
    if (msg.checksum != frame_checksum(msg.payload)) {
      dropped_corrupt_->inc();
      obs_->tracer.event(sim_.now(), obs::Category::kNet, "drop_corrupt",
                         msg.ctx,
                         {{"src", static_cast<double>(msg.src.node)},
                          {"dst", static_cast<double>(msg.dst.node)}});
      return;
    }
    auto it = endpoints_.find(msg.dst);
    if (it == endpoints_.end()) {
      dropped_no_endpoint_->inc();
      obs_->tracer.event(sim_.now(), obs::Category::kNet, "drop_no_endpoint",
                         msg.ctx,
                         {{"dst", static_cast<double>(msg.dst.node)}});
      return;
    }
    delivered_->inc();
    // The `queue` attribute splits the hop for the critical-path
    // analyzer: dur = queueing behind the serializer + link time.
    if (msg.ctx.valid()) msg.ctx = msg.ctx.child(obs_->tracer.mint_id());
    obs_->tracer.span(msg.sent_at, sim_.now(), obs::Category::kNet,
                      "deliver", msg.ctx,
                      {{"src", static_cast<double>(msg.src.node)},
                       {"dst", static_cast<double>(msg.dst.node)},
                       {"bytes", static_cast<double>(msg.wire_size)},
                       {"queue", static_cast<double>(queue_wait)}});
    it->second->on_message(msg);
  });

  if (dup) transmit(std::move(*dup), false);
}

}  // namespace coop::net
