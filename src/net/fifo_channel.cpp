#include "net/fifo_channel.hpp"

#include <algorithm>
#include <utility>

#include "util/codec.hpp"

namespace coop::net {

namespace {
enum WireType : std::uint8_t { kData = 0x71, kAck = 0x72 };
}  // namespace

FifoChannel::FifoChannel(Network& net, Address self, FifoConfig config)
    : net_(net), self_(self), config_(config) {
  net_.attach(self_, *this);
}

FifoChannel::~FifoChannel() {
  for (auto& [peer, state] : peers_) {
    if (state.timer != sim::kInvalidEvent) net_.simulator().cancel(state.timer);
  }
  net_.detach(self_);
}

void FifoChannel::send(const Address& peer, std::string payload) {
  PeerState& state = peers_[peer];
  const std::uint64_t seq = state.next_send_seq++;
  util::Writer w;
  w.put(kData).put(seq).put_string(payload);
  std::string wire = w.take();
  state.unacked[seq] = wire;
  ++stats_.sent;
  transmit(peer, seq, wire);
  if (state.timer == sim::kInvalidEvent) arm_timer(peer);
}

void FifoChannel::transmit(const Address& peer, std::uint64_t seq,
                           const std::string& wire) {
  (void)seq;
  net_.send({.src = self_, .dst = peer, .payload = wire});
}

void FifoChannel::arm_timer(const Address& peer) {
  PeerState& state = peers_[peer];
  // Exponential backoff capped at max_retransmit_timeout.
  sim::Duration timeout = config_.retransmit_timeout;
  for (int i = 0; i < state.retries && timeout < config_.max_retransmit_timeout;
       ++i) {
    timeout *= 2;
  }
  timeout = std::min(timeout, config_.max_retransmit_timeout);
  state.timer = net_.simulator().schedule_after(timeout, [this, peer] {
    auto it = peers_.find(peer);
    if (it == peers_.end()) return;
    PeerState& st = it->second;
    st.timer = sim::kInvalidEvent;
    if (st.unacked.empty()) return;
    ++st.retries;
    if (config_.max_retransmits >= 0 &&
        st.retries > config_.max_retransmits) {
      stats_.gave_up += st.unacked.size();
      st.unacked.clear();
      return;
    }
    // Go-back-N style: retransmit everything outstanding.
    for (const auto& [seq, wire] : st.unacked) {
      ++stats_.retransmits;
      transmit(peer, seq, wire);
    }
    arm_timer(peer);
  });
}

void FifoChannel::send_ack(const Address& peer, std::uint64_t cumulative) {
  util::Writer w;
  w.put(kAck).put(cumulative);
  net_.send({.src = self_, .dst = peer, .payload = w.take()});
}

std::size_t FifoChannel::unacked(const Address& peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.unacked.size();
}

void FifoChannel::on_message(const Message& msg) {
  util::Reader r(msg.payload);
  const auto type = r.get<std::uint8_t>();
  if (r.failed()) return;

  if (type == kAck) {
    const auto cum = r.get<std::uint64_t>();
    if (r.failed()) return;
    auto it = peers_.find(msg.src);
    if (it == peers_.end()) return;
    PeerState& state = it->second;
    const std::size_t before = state.unacked.size();
    state.unacked.erase(state.unacked.begin(),
                        state.unacked.upper_bound(cum));
    if (state.unacked.size() < before) state.retries = 0;
    if (state.unacked.empty() && state.timer != sim::kInvalidEvent) {
      net_.simulator().cancel(state.timer);
      state.timer = sim::kInvalidEvent;
    }
    return;
  }
  if (type != kData) return;

  const auto seq = r.get<std::uint64_t>();
  std::string payload = r.get_string();
  if (r.failed()) return;
  PeerState& state = peers_[msg.src];

  if (seq < state.next_expected) {
    ++stats_.duplicates;
    send_ack(msg.src, state.next_expected - 1);  // re-ack: ack was lost
    return;
  }
  if (seq > state.next_expected) {
    state.holdback.emplace(seq, std::move(payload));
    send_ack(msg.src, state.next_expected - 1);
    return;
  }
  // In-order: deliver, then drain the hold-back run.
  ++stats_.delivered;
  ++state.next_expected;
  if (receive_) receive_(msg.src, payload);
  while (true) {
    auto hit = state.holdback.find(state.next_expected);
    if (hit == state.holdback.end()) break;
    std::string next = std::move(hit->second);
    state.holdback.erase(hit);
    ++stats_.delivered;
    ++state.next_expected;
    if (receive_) receive_(msg.src, next);
  }
  send_ack(msg.src, state.next_expected - 1);
}

}  // namespace coop::net
