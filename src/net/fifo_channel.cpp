#include "net/fifo_channel.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/codec.hpp"

namespace coop::net {

namespace {
enum WireType : std::uint8_t { kData = 0x71, kAck = 0x72, kHello = 0x73 };
}  // namespace

FifoChannel::FifoChannel(Network& net, Address self, FifoConfig config)
    : net_(net), self_(self), config_(config) {
  net_.attach(self_, *this);
}

FifoChannel::~FifoChannel() {
  for (auto& [peer, state] : peers_) {
    if (state.timer != sim::kInvalidEvent) net_.simulator().cancel(state.timer);
  }
  net_.detach(self_);
}

FifoChannel::PeerState& FifoChannel::peer_state(const Address& peer) {
  auto [it, inserted] = peers_.try_emplace(peer);
  if (inserted) {
    it->second.send_epoch = config_.epoch;
    it->second.budget = RetryBudget(config_.retry_budget);
  }
  return it->second;
}

void FifoChannel::send(const Address& peer, std::string payload) {
  PeerState& state = peer_state(peer);
  // Bounded backlog: while a peer is unreachable the queue must not grow
  // without bound.  Tail-drop keeps the oldest (in-order-next) frames,
  // which is the only choice that lets the stream resume seamlessly once
  // the peer heals; dropped sends are visible in overflow_dropped.
  if (config_.max_unacked > 0 && state.unacked.size() >= config_.max_unacked) {
    ++stats_.overflow_dropped;
    return;
  }
  const std::uint64_t seq = state.next_send_seq++;
  ++stats_.sent;
  // Encode once; the backlog keeps a reference to the same wire bytes the
  // network is carrying, so retransmits cost no further encoding.
  util::Buf wire = encode_frame(state.send_epoch, seq, payload);
  net_.send({.src = self_, .dst = peer, .payload = wire});
  state.unacked[seq] = Backlog{std::move(payload), std::move(wire)};
  if (state.timer == sim::kInvalidEvent) arm_timer(peer);
}

void FifoChannel::resync(const Address& peer) {
  PeerState& state = peer_state(peer);
  state.hello_pending = true;
  send_hello(peer);
  if (state.timer == sim::kInvalidEvent) arm_timer(peer);
}

util::Buf FifoChannel::encode_frame(std::uint32_t epoch, std::uint64_t seq,
                                    std::string_view payload) {
  util::Writer w;
  w.put(kData).put(epoch).put(seq).put_string(payload);
  return w.take_buf();
}

void FifoChannel::send_hello(const Address& peer) {
  util::Writer w;
  w.put(kHello).put(peer_state(peer).send_epoch);
  net_.send({.src = self_, .dst = peer, .payload = w.take_buf()});
}

void FifoChannel::arm_timer(const Address& peer) {
  PeerState& state = peer_state(peer);
  // Exponential backoff capped at max_retransmit_timeout.
  sim::Duration timeout = config_.retransmit_timeout;
  for (int i = 0; i < state.retries && timeout < config_.max_retransmit_timeout;
       ++i) {
    timeout *= 2;
  }
  timeout = std::min(timeout, config_.max_retransmit_timeout);
  if (config_.backoff_jitter > 0) {
    const double scale = net_.simulator().rng().uniform(
        1.0 - config_.backoff_jitter, 1.0 + config_.backoff_jitter);
    timeout = std::max<sim::Duration>(
        1, static_cast<sim::Duration>(static_cast<double>(timeout) * scale));
  }
  state.timer = net_.simulator().schedule_after(timeout, [this, peer] {
    auto it = peers_.find(peer);
    if (it == peers_.end()) return;
    PeerState& st = it->second;
    st.timer = sim::kInvalidEvent;
    if (st.unacked.empty() && !st.hello_pending) return;
    ++st.retries;
    if (config_.max_retransmits >= 0 &&
        st.retries > config_.max_retransmits) {
      stats_.gave_up += st.unacked.size();
      st.unacked.clear();
      st.hello_pending = false;
      return;
    }
    // Enough consecutive silent rounds: the peer is unreachable.  Report
    // once per episode (ack progress resets the episode) and keep
    // retransmitting — backoff caps the chatter and max_unacked caps the
    // state, so persistence stays affordable.
    if (config_.unreachable_after > 0 &&
        st.retries >= config_.unreachable_after && !st.unreachable_reported) {
      st.unreachable_reported = true;
      ++stats_.unreachable_events;
      if (unreachable_) unreachable_(peer);
    }
    // Retransmit rounds draw from the same retry-budget abstraction as
    // RPC retries: a dry bucket skips this round's wire traffic (the
    // timer still re-arms, so a later round probes again once backoff
    // has spread the load).
    if (!st.budget.try_spend()) {
      ++stats_.budget_denied;
      arm_timer(peer);
      return;
    }
    if (st.hello_pending) send_hello(peer);
    // Go-back-N style: retransmit everything outstanding, re-sending the
    // original wire buffers (shared, not re-encoded).
    for (const auto& [seq, b] : st.unacked) {
      ++stats_.retransmits;
      net_.send({.src = self_, .dst = peer, .payload = b.wire});
    }
    arm_timer(peer);
  });
}

void FifoChannel::send_ack(const Address& peer, std::uint32_t epoch,
                           std::uint64_t cumulative) {
  util::Writer w;
  w.put(kAck).put(epoch).put(cumulative);
  net_.send({.src = self_, .dst = peer, .payload = w.take_buf()});
}

bool FifoChannel::observe_epoch(PeerState& state, std::uint32_t epoch) {
  if (epoch < state.remote_epoch) {
    // Frame of a dead incarnation still in flight: never regress.
    ++stats_.stale;
    return false;
  }
  if (epoch > state.remote_epoch) {
    // The peer's stream was renumbered from 1: reset the receive cursor.
    // (remote_epoch == 0 means first contact — count that silently.)
    if (state.remote_epoch != 0) ++stats_.resyncs;
    state.remote_epoch = epoch;
    state.next_expected = 1;
    state.holdback.clear();
  }
  return true;
}

void FifoChannel::resync_send(const Address& peer, PeerState& state) {
  // The peer restarted and lost its receive cursor: renumber the whole
  // outstanding backlog from 1 under a fresh epoch (so stragglers of the
  // old numbering are recognizably stale) and retransmit immediately.
  ++state.send_epoch;
  std::vector<std::string> backlog;
  backlog.reserve(state.unacked.size());
  for (auto& [seq, b] : state.unacked) {
    backlog.push_back(std::move(b.payload));
  }
  state.unacked.clear();
  state.next_send_seq = 1;
  state.retries = 0;
  for (std::string& payload : backlog) {
    const std::uint64_t seq = state.next_send_seq++;
    ++stats_.retransmits;
    util::Buf wire = encode_frame(state.send_epoch, seq, payload);
    net_.send({.src = self_, .dst = peer, .payload = wire});
    state.unacked[seq] = Backlog{std::move(payload), std::move(wire)};
  }
  if (state.timer != sim::kInvalidEvent) {
    net_.simulator().cancel(state.timer);
    state.timer = sim::kInvalidEvent;
  }
  if (!state.unacked.empty() || state.hello_pending) arm_timer(peer);
}

void FifoChannel::on_message(const Message& msg) {
  util::Reader r(msg.payload);
  const auto type = r.get<std::uint8_t>();
  if (r.failed()) return;

  if (type == kAck) {
    const auto epoch = r.get<std::uint32_t>();
    const auto cum = r.get<std::uint64_t>();
    if (r.failed()) return;
    auto it = peers_.find(msg.src);
    if (it == peers_.end()) return;
    PeerState& state = it->second;
    if (epoch != state.send_epoch) {
      ++stats_.stale;  // ack for a renumbered-away stream
      return;
    }
    // An ack echoing our current epoch proves the peer has reset to it.
    state.hello_pending = false;
    const std::size_t before = state.unacked.size();
    state.unacked.erase(state.unacked.begin(),
                        state.unacked.upper_bound(cum));
    if (state.unacked.size() < before) {
      state.retries = 0;
      state.unreachable_reported = false;  // episode over: progress made
      for (std::size_t i = state.unacked.size(); i < before; ++i) {
        state.budget.on_success();  // each acked frame earns budget
      }
    }
    if (state.unacked.empty() && !state.hello_pending &&
        state.timer != sim::kInvalidEvent) {
      net_.simulator().cancel(state.timer);
      state.timer = sim::kInvalidEvent;
    }
    return;
  }

  if (type == kHello) {
    const auto epoch = r.get<std::uint32_t>();
    if (r.failed()) return;
    PeerState& state = peer_state(msg.src);
    const std::uint32_t previous = state.remote_epoch;
    if (!observe_epoch(state, epoch)) return;
    // A hello (unlike a mere data-frame epoch bump) asserts the peer is a
    // fresh incarnation with no receive state: our old sequence numbers
    // mean nothing to it, so renumber the outstanding backlog.  Guarded
    // to actual bumps so duplicate hellos are idempotent.
    if (epoch > previous) resync_send(msg.src, state);
    send_ack(msg.src, state.remote_epoch, state.next_expected - 1);
    return;
  }
  if (type != kData) return;

  const auto epoch = r.get<std::uint32_t>();
  const auto seq = r.get<std::uint64_t>();
  std::string payload = r.get_string();
  if (r.failed()) return;
  PeerState& state = peer_state(msg.src);
  if (!observe_epoch(state, epoch)) return;

  if (seq < state.next_expected) {
    ++stats_.duplicates;
    send_ack(msg.src, state.remote_epoch,
             state.next_expected - 1);  // re-ack: ack was lost
    return;
  }
  if (seq > state.next_expected) {
    state.holdback.emplace(seq, std::move(payload));
    send_ack(msg.src, state.remote_epoch, state.next_expected - 1);
    return;
  }
  // In-order: deliver, then drain the hold-back run.
  ++stats_.delivered;
  ++state.next_expected;
  if (receive_) receive_(msg.src, payload);
  while (true) {
    auto hit = state.holdback.find(state.next_expected);
    if (hit == state.holdback.end()) break;
    std::string next = std::move(hit->second);
    state.holdback.erase(hit);
    ++stats_.delivered;
    ++state.next_expected;
    if (receive_) receive_(msg.src, next);
  }
  send_ack(msg.src, state.remote_epoch, state.next_expected - 1);
}

std::size_t FifoChannel::unacked(const Address& peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.unacked.size();
}

}  // namespace coop::net
