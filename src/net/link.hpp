// Link models: the knobs that turn one simulator into a LAN, a WAN, or a
// flaky radio channel.
//
// A LinkModel captures the four parameters the paper's engineering-viewpoint
// discussion cares about — latency, jitter, bandwidth and loss — plus a
// serialization/queueing model so that cross-traffic genuinely congests a
// link (needed for the QoS experiments, E6).  Mobility (§4.2.2) is modelled
// by switching a node between connectivity levels, each mapping to a link
// parameter override.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace coop::net {

/// Static characteristics of a (directed) link.
struct LinkModel {
  sim::Duration latency = sim::msec(1);    ///< one-way propagation delay
  sim::Duration jitter = 0;                ///< uniform ± jitter added
  double bandwidth_bps = 100e6;            ///< serialization rate
  double loss = 0.0;                       ///< drop probability per datagram

  /// Serialization delay for a datagram of @p bytes.
  [[nodiscard]] sim::Duration serialize_time(std::size_t bytes) const {
    if (bandwidth_bps <= 0) return 0;
    const double seconds = static_cast<double>(bytes) * 8.0 / bandwidth_bps;
    return static_cast<sim::Duration>(seconds * 1e6);
  }

  /// Guaranteed minimum propagation delay: the worst-case downward jitter
  /// excursion, clamped at zero.  This is the conservative-lookahead bound
  /// the sharded kernel builds its epoch window from (sim/shard.hpp): no
  /// datagram on this link can arrive sooner than min_latency() after it
  /// was sent, so shards separated by the link are independent inside a
  /// window of that width.
  [[nodiscard]] sim::Duration min_latency() const noexcept {
    const sim::Duration d = latency - jitter;
    return d > 0 ? d : 0;
  }

  /// Propagation delay sample (latency ± jitter).
  [[nodiscard]] sim::Duration propagation(sim::Rng& rng) const {
    if (jitter <= 0) return latency;
    const auto j = static_cast<sim::Duration>(
        rng.uniform(-static_cast<double>(jitter),
                    static_cast<double>(jitter)));
    const sim::Duration d = latency + j;
    return d > 0 ? d : 0;
  }

  // Named presets used across tests, examples and benches -----------------

  /// Same-building Ethernet (co-located quadrants of the space-time matrix).
  static LinkModel lan() {
    return {.latency = sim::usec(300), .jitter = sim::usec(100),
            .bandwidth_bps = 100e6, .loss = 0.0};
  }

  /// Inter-site leased line / early-90s WAN (remote quadrants).
  static LinkModel wan() {
    return {.latency = sim::msec(40), .jitter = sim::msec(8),
            .bandwidth_bps = 2e6, .loss = 0.005};
  }

  /// Transcontinental path for geographically dispersed groups.
  static LinkModel intercontinental() {
    return {.latency = sim::msec(120), .jitter = sim::msec(20),
            .bandwidth_bps = 1e6, .loss = 0.01};
  }

  /// Packet-radio channel: the "partially connected" mobile regime.
  static LinkModel radio() {
    return {.latency = sim::msec(150), .jitter = sim::msec(60),
            .bandwidth_bps = 19'200, .loss = 0.05};
  }
};

/// A transient degradation applied on top of every effective link model —
/// the fault plane's "bad weather" window (loss/latency/jitter spike).
/// Additive, so it composes with whatever the pair's link already is:
/// a LAN under disturbance degrades less absolutely than a radio link.
struct LinkDisturbance {
  double extra_loss = 0.0;           ///< added drop probability
  sim::Duration extra_latency = 0;   ///< added one-way delay
  sim::Duration extra_jitter = 0;    ///< added uniform ± jitter

  [[nodiscard]] bool active() const noexcept {
    return extra_loss > 0 || extra_latency > 0 || extra_jitter > 0;
  }
};

/// Mobility regimes from §4.2.2-iii "Levels of disconnection".
enum class Connectivity {
  kDisconnected,  ///< no datagrams flow in either direction
  kPartial,       ///< radio-link override applies (low bw, lossy)
  kFull,          ///< the configured wired link applies
};

/// Per-directed-link dynamic state: the queueing horizon that produces
/// congestion when offered load exceeds bandwidth.
struct LinkState {
  sim::TimePoint busy_until = 0;   ///< when the serializer frees up
  std::uint64_t sent = 0;          ///< datagrams accepted
  std::uint64_t dropped = 0;       ///< datagrams lost (loss or partition)
  std::uint64_t bytes = 0;         ///< wire bytes accepted
};

}  // namespace coop::net
