// The simulated internetwork: hosts, links, unicast, multicast, partitions
// and mobile connectivity.
//
// Network is the single point through which every coop protocol sends
// datagrams.  It owns link state (so congestion is shared by all traffic on
// a link), applies loss and partitions, models per-node mobile connectivity
// levels, and delivers to registered Endpoints at the simulated arrival
// time.  Delivery is at-most-once and may reorder across messages of
// different sizes or jitter draws — exactly the properties the reliable
// multicast and RPC layers must (and do) repair.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/message.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace coop::net {

/// Aggregate traffic statistics, for experiment accounting.  Assembled on
/// demand from the "net.*" registry counters — the registry is the storage,
/// this struct is the view.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_no_endpoint = 0;
  std::uint64_t dropped_corrupt = 0;
  std::uint64_t bytes_sent = 0;
};

/// Per-datagram fault actions an injection hook may order (the chaos
/// plane's handle on individual frames).  `corrupt` flips a payload byte
/// after the checksum is stamped, so the frame fails integrity
/// verification at arrival; `duplicate` sends one extra copy through the
/// link (charged bandwidth like any frame); `extra_delay` is added to the
/// propagation time.
struct InjectDecision {
  bool corrupt = false;
  bool duplicate = false;
  sim::Duration extra_delay = 0;
};

/// Consulted once per original datagram at transmit time (injected
/// duplicates are not re-offered, so duplication cannot cascade).
using InjectHook = std::function<InjectDecision(const Message&)>;

/// The simulated network fabric.
class Network {
 public:
  /// Binds to @p obs if given, else the ambient default, else a private
  /// Obs owned by this network — so unit tests that build a bare Network
  /// need no ceremony, while Platform/bench runs share one registry.
  explicit Network(sim::Simulator& sim, obs::Obs* obs = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -----------------------------------------------------------

  /// Sets the link model used between any pair without an explicit link.
  void set_default_link(const LinkModel& model) { default_link_ = model; }

  /// Sets the directed link @p from -> @p to.  Call twice (or use
  /// set_symmetric_link) for a bidirectional path.
  void set_link(NodeId from, NodeId to, const LinkModel& model) {
    links_[key(from, to)] = model;
  }

  /// Sets both directions between @p a and @p b.
  void set_symmetric_link(NodeId a, NodeId b, const LinkModel& model) {
    set_link(a, b, model);
    set_link(b, a, model);
  }

  /// Effective model for a directed pair (explicit link or default),
  /// before mobile-connectivity overrides.
  [[nodiscard]] const LinkModel& link(NodeId from, NodeId to) const {
    auto it = links_.find(key(from, to));
    return it != links_.end() ? it->second : default_link_;
  }

  /// Conservative lookahead for the sharded kernel: the smallest
  /// min_latency() any datagram on this topology can experience — the
  /// minimum over the default link, every explicit link, and (when any
  /// node has a mobile-connectivity override installed) the radio model.
  /// Disturbances only ever *add* delay, so they cannot invalidate the
  /// bound.  Recompute after topology or mobility changes; a zero result
  /// tells ShardedEngine to fall back to barrier-synchronized epochs.
  [[nodiscard]] sim::Duration lookahead() const noexcept {
    sim::Duration la = default_link_.min_latency();
    for (const auto& [k, m] : links_) la = std::min(la, m.min_latency());
    if (!connectivity_.empty())
      la = std::min(la, radio_model_.min_latency());
    return la;
  }

  // --- endpoints -----------------------------------------------------------

  /// Registers @p ep to receive datagrams addressed to @p addr.  The caller
  /// keeps ownership and must detach (or outlive the network's last event).
  void attach(const Address& addr, Endpoint& ep) { endpoints_[addr] = &ep; }

  /// Removes the endpoint registration, if any.
  void detach(const Address& addr) { endpoints_.erase(addr); }

  // --- faults & mobility ---------------------------------------------------

  /// Cuts all traffic between the two partition sides (nodes listed in
  /// @p side_a vs everyone else if @p side_b is empty).
  void partition(const std::set<NodeId>& side_a,
                 const std::set<NodeId>& side_b = {});

  /// Removes any partition.
  void heal_partition() { partitioned_ = false; }

  /// Marks a node as crashed: nothing is delivered to or sent from it.
  void crash(NodeId node) { crashed_.insert(node); }

  /// Restores a crashed node *in place*: connectivity resumes and every
  /// endpoint registration survives, as if the node had merely been
  /// frozen.  For fail-stop process death use restart().
  void recover(NodeId node) { crashed_.erase(node); }

  /// Restores a crashed node with restart semantics: its outbound
  /// serializer queues are drained (a rebooted NIC holds no backlog).
  /// The process's volatile protocol state does NOT survive — callers
  /// model that by destroying the node's protocol objects at crash time
  /// (their destructors detach) and re-creating them now (fault::FaultPlan
  /// drives exactly this lifecycle through its crash/restart callbacks).
  void restart(NodeId node);

  /// Installs (or clears, with nullptr) the per-datagram fault-injection
  /// hook.  See InjectHook; the fault plane owns the probabilities, the
  /// network only executes the decision.
  void set_inject_hook(InjectHook hook) { inject_ = std::move(hook); }

  /// Applies a transient degradation on top of every link until
  /// clear_disturbance() — the chaos plane's degraded-link window.
  void set_disturbance(const LinkDisturbance& d) { disturbance_ = d; }
  void clear_disturbance() { disturbance_ = {}; }
  [[nodiscard]] const LinkDisturbance& disturbance() const noexcept {
    return disturbance_;
  }

  [[nodiscard]] bool is_crashed(NodeId node) const {
    return crashed_.count(node) != 0;
  }

  /// Sets the mobile-connectivity level of a node (§4.2.2).  kPartial
  /// replaces the node's links with the radio override; kDisconnected
  /// drops everything.
  void set_connectivity(NodeId node, Connectivity level) {
    connectivity_[node] = level;
  }

  [[nodiscard]] Connectivity connectivity(NodeId node) const {
    auto it = connectivity_.find(node);
    return it != connectivity_.end() ? it->second : Connectivity::kFull;
  }

  /// Overrides the link model applied while a node is kPartial (defaults
  /// to LinkModel::radio()).
  void set_radio_model(const LinkModel& model) { radio_model_ = model; }

  // --- multicast -----------------------------------------------------------

  /// Adds @p member to multicast group @p group.
  void mcast_join(McastId group, const Address& member) {
    mcast_groups_[group].insert(member);
  }

  /// Removes @p member from @p group.
  void mcast_leave(McastId group, const Address& member) {
    auto it = mcast_groups_.find(group);
    if (it == mcast_groups_.end()) return;
    it->second.erase(member);
    if (it->second.empty()) mcast_groups_.erase(it);
  }

  [[nodiscard]] std::size_t mcast_size(McastId group) const {
    auto it = mcast_groups_.find(group);
    return it != mcast_groups_.end() ? it->second.size() : 0;
  }

  // --- traffic -------------------------------------------------------------

  /// Sends a unicast datagram.  Returns the assigned message id.
  std::uint64_t send(Message msg);

  /// Sends one copy of @p msg to every member of @p group (except the
  /// sender's own address).  Each copy traverses its own link.
  std::uint64_t multicast(McastId group, Message msg);

  /// Traffic totals, assembled from the registry counters.
  [[nodiscard]] NetworkStats stats() const noexcept;

  /// Opt-in delivery coalescing: datagrams on the same directed link with
  /// the same arrival timestamp share one kernel event instead of one
  /// each.  Default off — coalescing preserves per-link delivery order
  /// and all virtual-time results, but it changes the kernel event count
  /// (and therefore the step-event trace), so runs are only comparable
  /// against runs with the same setting.
  void set_delivery_coalescing(bool on) noexcept { coalesce_ = on; }
  [[nodiscard]] bool delivery_coalescing() const noexcept {
    return coalesce_;
  }
  /// Datagrams that piggybacked on an already-scheduled delivery event
  /// (plain member, not a registry metric: must not alter artifacts).
  [[nodiscard]] std::uint64_t coalesced_deliveries() const noexcept {
    return coalesced_;
  }

  /// Per-directed-link dynamic counters (congestion inspection in tests).
  [[nodiscard]] const LinkState* link_state(NodeId from, NodeId to) const {
    auto it = link_states_.find(key(from, to));
    return it != link_states_.end() ? &it->second : nullptr;
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// The observability context every layer above the network records into.
  [[nodiscard]] obs::Obs& obs() noexcept { return *obs_; }

 private:
  static std::uint64_t key(NodeId from, NodeId to) noexcept {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  /// Applies connectivity overrides; nullopt means "no path".
  [[nodiscard]] std::optional<LinkModel> effective_link(NodeId from,
                                                        NodeId to) const;

  [[nodiscard]] bool partition_blocks(NodeId a, NodeId b) const;

  void transmit(Message msg, bool injectable = true);

  /// Arrival-time half of transmit(): fault re-check, integrity check,
  /// endpoint demux.  Runs inside the delivery event.
  void deliver(Message& msg, sim::Duration queue_wait);

  /// Hands @p msg to the kernel for delivery at @p arrival.  The message
  /// parks in a recycled slot so the kernel event captures only {this,
  /// slot index} — small enough for the event's inline storage.
  void schedule_delivery(sim::TimePoint arrival, Message&& msg,
                         sim::Duration queue_wait);

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Parked in-flight datagram awaiting its delivery event.
  struct DeliverySlot {
    Message msg;
    sim::Duration queue_wait = 0;
    std::uint32_t next = kNoSlot;  ///< chain link within a coalesced batch
  };

  /// One scheduled kernel event covering a chain of same-link,
  /// same-arrival deliveries (coalescing mode only).
  struct Batch {
    sim::TimePoint at = 0;
    std::uint64_t link = 0;
    std::uint32_t head = kNoSlot;
    std::uint32_t tail = kNoSlot;
  };

  std::uint32_t acquire_dslot(Message&& msg, sim::Duration queue_wait);
  DeliverySlot take_dslot(std::uint32_t slot);
  void fire_batch(std::uint32_t batch);

  sim::Simulator& sim_;
  std::unique_ptr<obs::Obs> owned_obs_;  // only when no context was supplied
  obs::Obs* obs_;
  // Registry-owned traffic counters ("net.sent", ...); stats() is a view.
  util::Counter* sent_;
  util::Counter* delivered_;
  util::Counter* dropped_loss_;
  util::Counter* dropped_partition_;
  util::Counter* dropped_no_endpoint_;
  util::Counter* dropped_corrupt_;
  util::Counter* bytes_sent_;
  // Observability plane hooks: windowed delivery/drop trajectories and
  // the wall-clock profile of endpoint dispatch.
  obs::Timeseries::SeriesId ts_delivered_;
  obs::Timeseries::SeriesId ts_dropped_;
  obs::Profiler::SiteId prof_deliver_;
  InjectHook inject_;
  LinkDisturbance disturbance_;
  LinkModel default_link_ = LinkModel::lan();
  LinkModel radio_model_ = LinkModel::radio();
  std::unordered_map<std::uint64_t, LinkModel> links_;
  std::unordered_map<std::uint64_t, LinkState> link_states_;
  std::unordered_map<Address, Endpoint*> endpoints_;
  std::map<McastId, std::set<Address>> mcast_groups_;
  std::set<NodeId> crashed_;
  std::unordered_map<NodeId, Connectivity> connectivity_;
  bool partitioned_ = false;
  std::set<NodeId> side_a_;
  std::set<NodeId> side_b_;  // empty => complement of side_a_
  std::uint64_t next_msg_id_ = 1;
  // Delivery slot + batch pools (freelist-recycled, never shrink).
  std::vector<DeliverySlot> dslots_;
  std::vector<std::uint32_t> dfree_;
  std::vector<Batch> batches_;
  std::vector<std::uint32_t> bfree_;
  // link key -> batch still accepting appends (its arrival time is the
  // link's current latest; an older entry is superseded in place and
  // closes itself when its event fires).
  std::unordered_map<std::uint64_t, std::uint32_t> open_batch_;
  bool coalesce_ = false;
  std::uint64_t coalesced_ = 0;
};

}  // namespace coop::net
