// Wire-level message and addressing types for the simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/causal.hpp"
#include "sim/time.hpp"
#include "util/buf.hpp"

namespace coop::net {

/// Identifies a simulated host.
using NodeId = std::uint32_t;

/// Identifies a service endpoint within a host (like a UDP port).
using PortId = std::uint16_t;

/// A multicast group address (distinct namespace from unicast nodes).
using McastId = std::uint32_t;

/// Three-level message priority for the overload control plane.  Under
/// saturation the platform sheds lowest-priority-first: awareness and
/// media traffic is "supporting" load that must yield to the cooperative
/// operations a session cannot function without (floor changes, shared-
/// document updates) — the graceful-degradation stance of §4.2.2.
enum class Priority : std::uint8_t {
  kCore = 0,        ///< shared-document updates, floor-critical RPCs
  kControl = 1,     ///< floor control, membership, negotiations
  kBackground = 2,  ///< awareness events, media frames, snapshots
};

inline constexpr std::size_t kPriorityCount = 3;

/// Stable short name used in metrics/traces ("core", "control",
/// "background").
[[nodiscard]] constexpr const char* priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::kCore:
      return "core";
    case Priority::kControl:
      return "control";
    case Priority::kBackground:
      return "background";
  }
  return "?";
}

/// Full endpoint address: host + port.
struct Address {
  NodeId node = 0;
  PortId port = 0;

  bool operator==(const Address&) const = default;
  auto operator<=>(const Address&) const = default;
};

/// Frame checksum over a payload (FNV-1a, 32-bit).  Deterministic and
/// platform-stable; strong enough to catch the single-byte corruptions the
/// fault plane injects (this is an integrity check, not cryptography).
[[nodiscard]] inline std::uint32_t frame_checksum(
    std::string_view payload) noexcept {
  std::uint32_t h = 0x811c9dc5u;
  for (const char c : payload) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

/// One datagram in flight.  `payload` carries the application encoding
/// (util::Writer output); `wire_size` is what the link-bandwidth model
/// charges, normally payload size plus a fixed header.
///
/// The payload is a ref-counted immutable util::Buf: copying a Message
/// (multicast fan-out, retransmit backlogs, replay caches) shares one
/// payload allocation instead of deep-copying the bytes.  Buf converts
/// implicitly from std::string/string_view and to string_view, so
/// existing encode/decode call sites read the same.
struct Message {
  Address src;
  Address dst;
  util::Buf payload;
  std::size_t wire_size = 0;
  std::uint64_t id = 0;              ///< unique per network, for tracing
  sim::TimePoint sent_at = 0;        ///< stamped by Network::send
  bool multicast = false;            ///< delivered via a multicast group
  McastId group = 0;                 ///< valid when multicast
  /// Frame checksum stamped by Network::send/multicast before any fault
  /// injection can touch the payload, and verified at arrival: a frame
  /// whose payload no longer matches is counted in `net.dropped_corrupt`
  /// and dropped — corrupt bytes never reach an Endpoint (and so are
  /// never parsed by util::Reader).  Part of the simulated 32-byte
  /// header, not charged separately to wire_size.
  std::uint32_t checksum = 0;
  /// Absolute deadline (virtual time) after which this work is worthless,
  /// 0 = none.  Stamped by the sending protocol layer next to the causal
  /// context and carried as part of the simulated header: servers and the
  /// total-order sequencer drop already-expired work on dequeue instead of
  /// burning service time on it (counted in `rpc.expired_drops`).
  sim::TimePoint deadline = 0;
  /// Scheduling class of this datagram's work (see Priority).  Admission
  /// control sheds lowest-priority-first at its watermarks.
  Priority priority = Priority::kCore;
  /// Causal-trace header (simulated; not charged to wire_size).  Set by
  /// the sending protocol layer; the network derives per-hop children, so
  /// the context an Endpoint sees identifies the *delivery*, with the
  /// sender's span as its ancestor.
  obs::CausalContext ctx{};

  /// Simulated UDP/IP-style header overhead charged per datagram.
  static constexpr std::size_t kHeaderBytes = 32;
};

/// Receives datagrams delivered by the network.  Implemented by every
/// protocol entity (RPC endpoints, group members, stream sinks...).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Called at the simulated arrival time of the message.
  virtual void on_message(const Message& msg) = 0;
};

}  // namespace coop::net

template <>
struct std::hash<coop::net::Address> {
  std::size_t operator()(const coop::net::Address& a) const noexcept {
    // Multiply-mix (murmur3 finalizer) over all 48 address bits.  The old
    // `(node << 16) ^ port` discarded the high node bits on 32-bit size_t
    // and kept sequential node ids in consecutive buckets — pessimal for
    // the hot endpoints_ lookup where experiments allocate node ids
    // densely from 0.
    std::uint64_t k =
        (static_cast<std::uint64_t>(a.node) << 16) | a.port;
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }
};
