#include "durable/wal.hpp"

#include <algorithm>
#include <utility>

#include "net/message.hpp"  // frame_checksum (FNV-1a)
#include "util/codec.hpp"

namespace coop::durable {

namespace {

std::string metric_key(const std::string& name, const char* leaf) {
  return "durable." + name + "." + leaf;
}

}  // namespace

Wal::Wal(sim::Simulator& sim, obs::Obs& obs, StableMedia& media,
         WalConfig cfg, std::uint64_t first_lsn)
    : sim_(sim),
      media_(media),
      cfg_(std::move(cfg)),
      next_lsn_(first_lsn),
      synced_lsn_(first_lsn > 0 ? first_lsn - 1 : 0),
      obs_(obs) {
  auto& m = obs_.metrics;
  appends_ = &m.counter(metric_key(cfg_.name, "appends"));
  syncs_ = &m.counter(metric_key(cfg_.name, "syncs"));
  synced_bytes_ = &m.counter(metric_key(cfg_.name, "synced_bytes"));
}

Wal::~Wal() {
  if (sync_timer_ != sim::kInvalidEvent) sim_.cancel(sync_timer_);
}

void Wal::encode_frame(std::vector<std::uint8_t>& out, const WalRecord& rec) {
  util::Writer w;
  w.put(static_cast<std::uint8_t>(rec.type))
      .put(rec.lsn)
      .put(rec.version)
      .put(rec.stamp)
      .put_string(rec.key)
      .put_string(rec.value);
  const std::string body = w.take();
  util::Writer hdr;
  hdr.put(static_cast<std::uint32_t>(body.size()))
      .put(net::frame_checksum(body));
  const std::string head = hdr.take();
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), body.begin(), body.end());
}

bool Wal::Scanner::next(WalRecord& out) {
  if (done_) return false;
  const std::size_t remaining = log_.size() - pos_;
  if (remaining == 0) {
    done_ = true;
    return false;
  }
  if (remaining < 8) {  // not even a frame header: torn tail
    torn_ = true;
    done_ = true;
    return false;
  }
  const auto* base = reinterpret_cast<const char*>(log_.data());
  util::Reader hdr(std::string_view(base + pos_, 8));
  const auto len = hdr.get<std::uint32_t>();
  const auto sum = hdr.get<std::uint32_t>();
  if (len > remaining - 8) {  // body overruns the medium: torn tail
    torn_ = true;
    done_ = true;
    return false;
  }
  const std::string_view body(base + pos_ + 8, len);
  if (net::frame_checksum(body) != sum) {  // corrupt frame: never parsed
    torn_ = true;
    done_ = true;
    return false;
  }
  util::Reader r(body);
  WalRecord rec;
  rec.type = static_cast<WalRecord::Type>(r.get<std::uint8_t>());
  rec.lsn = r.get<std::uint64_t>();
  rec.version = r.get<std::uint64_t>();
  rec.stamp = r.get<std::uint64_t>();
  rec.key = r.get_string();
  rec.value = r.get_string();
  if (r.failed() || !r.exhausted() ||
      (rec.type != WalRecord::kPut && rec.type != WalRecord::kErase)) {
    torn_ = true;  // checksummed but malformed: treat as corruption
    done_ = true;
    return false;
  }
  pos_ += 8 + len;
  ++records_;
  out = std::move(rec);
  return true;
}

std::uint64_t Wal::append(WalRecord rec, DurableFn on_durable) {
  rec.lsn = next_lsn_++;
  encode_frame(pending_, rec);
  appends_->inc();
  if (on_durable) waiters_.push_back({rec.lsn, std::move(on_durable)});
  if (cfg_.sync_interval <= 0) {
    sync();
  } else {
    arm_sync_timer();
  }
  return rec.lsn;
}

void Wal::arm_sync_timer() {
  if (sync_timer_ != sim::kInvalidEvent || crashed_) return;
  sync_timer_ = sim_.schedule_after(cfg_.sync_interval, [this] {
    sync_timer_ = sim::kInvalidEvent;
    sync();
  });
}

void Wal::sync() {
  if (crashed_ || pending_.empty()) return;
  media_.log.insert(media_.log.end(), pending_.begin(), pending_.end());
  synced_bytes_->inc(pending_.size());
  syncs_->inc();
  obs_.tracer.event(sim_.now(), obs::Category::kDurable, "sync",
                    {{"bytes", static_cast<double>(pending_.size())},
                     {"log_bytes", static_cast<double>(media_.log.size())},
                     {"acks", static_cast<double>(waiters_.size())}});
  pending_.clear();
  synced_lsn_ = next_lsn_ - 1;
  // Swap out first: an ack callback may append (and so wait) again.
  std::vector<Waiter> fire;
  fire.swap(waiters_);
  for (Waiter& w : fire) w.fn();
  if (after_sync_) after_sync_();
}

void Wal::crash(std::size_t torn_bytes) {
  crashed_ = true;
  if (sync_timer_ != sim::kInvalidEvent) {
    sim_.cancel(sync_timer_);
    sync_timer_ = sim::kInvalidEvent;
  }
  const std::size_t torn = std::min(torn_bytes, pending_.size());
  if (torn > 0) {
    media_.log.insert(media_.log.end(), pending_.begin(),
                      pending_.begin() + static_cast<std::ptrdiff_t>(torn));
    ++media_.torn_writes;
    obs_.tracer.event(sim_.now(), obs::Category::kDurable, "torn_tail",
                      {{"bytes", static_cast<double>(torn)}});
  }
  pending_.clear();
  waiters_.clear();  // un-acked by construction: dropped unfired
}

void Wal::truncate_log() { media_.log.clear(); }

}  // namespace coop::durable
