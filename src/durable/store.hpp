// DurableStore — a crash-consistent ccontrol::ObjectStore: every mutation
// is written ahead to a StableMedia, acknowledgements gate on group-commit
// sync, and a restart reconstructs the in-memory state solely from
// checkpoint + WAL replay.
//
// Lifecycle (the fault::FaultPlan crash/restart seam):
//
//   crash    — harness calls crash(torn_bytes) then destroys the object.
//              The unsynced tail is lost (modulo a torn garbage prefix),
//              pending acks drop unfired, the in-memory store dies.
//   restart  — harness constructs a fresh DurableStore over the same
//              StableMedia; the constructor runs recovery: load the last
//              sealed checkpoint (checksum-verified), replay the log
//              suffix (records below the checkpoint's base lsn are
//              skipped), discard the torn/corrupt tail, and resume the
//              lsn sequence above everything recovered.
//
// Checkpoint + compaction: when the synced log exceeds
// checkpoint_log_bytes, the store seals a snapshot of the full in-memory
// state (items + surviving tombstones + base lsn, one checksummed blob,
// atomically replacing the previous snapshot) and truncates the log — so
// log growth is bounded by threshold + one group-commit batch under
// sustained writes, and recovery cost stays O(state + one threshold of
// log) regardless of history length.  Tombstones are GC'd at seal time
// (TTL + count cap, see ObjectStore::gc_tombstones).
//
// Replication hooks: apply_remote_put/apply_remote_erase adopt
// anti-entropy transfers by last-writer-wins on the absolute per-key
// version (ties keep local), writing adopted entries through the WAL so
// catch-up state is exactly as durable as local writes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "ccontrol/store.hpp"
#include "durable/wal.hpp"

namespace coop::durable {

struct DurableConfig {
  std::string name = "store";  ///< metrics key component: durable.<name>.*
  /// Group-commit interval (0 = sync on every append).
  sim::Duration sync_interval = sim::msec(5);
  /// Seal a checkpoint + truncate when the synced log exceeds this many
  /// bytes (0 = manual checkpoints only).  The durable log is then bounded
  /// by this threshold plus one group-commit batch.
  std::size_t checkpoint_log_bytes = 64 * 1024;
  std::size_t tombstone_cap = 1024;           ///< max tombstones kept
  sim::Duration tombstone_ttl = sim::minutes(10);  ///< GC'd at checkpoint
  /// Modeled virtual-time cost of replaying one recovered byte, reported
  /// as the durable.recovery_us series (recovery itself is instantaneous
  /// in the discrete-event world; the model makes recovery *latency* a
  /// measurable trajectory).
  double replay_us_per_byte = 0.05;
};

/// What recovery found on the medium (per-instance view; the registry
/// mirrors the totals as durable.<name>.* counters).
struct RecoveryStats {
  bool checkpoint_loaded = false;  ///< a valid snapshot was restored
  bool checkpoint_corrupt = false; ///< snapshot present but failed checksum
  std::uint64_t base_lsn = 0;      ///< first lsn the replay had to apply
  std::uint64_t replayed_records = 0;
  std::uint64_t skipped_records = 0;   ///< below base_lsn (covered by ckpt)
  std::size_t truncated_bytes = 0;     ///< torn/corrupt tail discarded
  std::size_t scanned_bytes = 0;       ///< checkpoint + log bytes read
};

class DurableStore {
 public:
  using DurableFn = Wal::DurableFn;

  /// Constructing the store IS recovery: the in-memory state is rebuilt
  /// from @p media before the first operation is accepted.
  DurableStore(sim::Simulator& sim, obs::Obs& obs, StableMedia& media,
               DurableConfig cfg);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  // --- mutations (write-ahead, ack on sync) --------------------------------

  /// Writes (@p key, @p value); @p on_durable fires when the op's WAL
  /// record has reached the stable medium (never, if a crash intervenes —
  /// the op is then lost with the unsynced tail, exactly the un-acked
  /// window).
  void put(const std::string& key, std::string value,
           DurableFn on_durable = nullptr);

  /// Deletes @p key, leaving a durable tombstone; @p on_durable as put().
  /// Deleting a key that never existed is trivially durable and acks
  /// immediately.
  void erase(const std::string& key, DurableFn on_durable = nullptr);

  // --- anti-entropy adoption ----------------------------------------------

  /// Adopts a remote value iff @p version dominates the local known
  /// version (live or tombstone; ties keep local).  Adopted entries are
  /// WAL-written with their remote version.  Returns true if adopted.
  bool apply_remote_put(const std::string& key, std::string value,
                        std::uint64_t version, std::uint64_t stamp);

  /// Adopts a remote deletion iff @p version dominates.  Returns true if
  /// adopted.
  bool apply_remote_erase(const std::string& key, std::uint64_t version,
                          std::uint64_t stamp);

  // --- reads / introspection ----------------------------------------------

  [[nodiscard]] std::optional<std::string> read(const std::string& key) const {
    return mem_.read(key);
  }
  [[nodiscard]] const ccontrol::ObjectStore& store() const noexcept {
    return mem_;
  }
  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }
  [[nodiscard]] std::size_t log_bytes() const noexcept {
    return wal_.log_bytes();
  }
  /// Largest synced-log size ever observed (bounded-log invariant input).
  [[nodiscard]] std::size_t max_log_bytes() const noexcept {
    return max_log_bytes_;
  }
  [[nodiscard]] std::uint64_t next_lsn() const noexcept {
    return wal_.next_lsn();
  }

  // --- durability control --------------------------------------------------

  /// Forces a group commit now.
  void sync() { wal_.sync(); }

  /// Seals a checkpoint (sync + snapshot + log truncation + tombstone GC).
  void checkpoint();

  /// Fail-stop crash: see Wal::crash.  The object is inert afterwards.
  void crash(std::size_t torn_bytes = 0) { wal_.crash(torn_bytes); }

 private:
  /// Rebuilds @p mem from @p media and repairs the medium (torn suffix
  /// truncated, so future appends follow the intact prefix); returns the
  /// next lsn to issue.
  static std::uint64_t recover(StableMedia& media, ccontrol::ObjectStore& mem,
                               RecoveryStats& out);

  void after_sync();

  sim::Simulator& sim_;
  obs::Obs& obs_;
  StableMedia& media_;
  DurableConfig cfg_;
  ccontrol::ObjectStore mem_;
  RecoveryStats recovery_;
  Wal wal_;  // constructed last: recovery computes its first lsn
  std::size_t max_log_bytes_ = 0;
  bool checkpointing_ = false;
  // Registry-owned "durable.<name>.*" counters.
  util::Counter* replays_;
  util::Counter* replayed_records_;
  util::Counter* truncated_tail_;
  util::Counter* truncated_bytes_;
  util::Counter* checkpoints_;
  util::Counter* tombstones_gc_;
  obs::Timeseries::SeriesId ts_recovery_;
};

}  // namespace coop::durable
