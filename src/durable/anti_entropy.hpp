// Anti-entropy catch-up between DurableStore replicas.
//
// A replica that sat out a partition (or lost its unsynced tail to a
// crash) converges by *pulling*: it sends a compact summary of its known
// per-key versions — the version vector of its live items and tombstones —
// and the responder answers with exactly the entries that dominate it
// (last-writer-wins on the absolute per-key version).  No full state
// transfer: the reply is proportional to the divergence, not to the store.
//
// Deletions travel as tombstone entries, so "deleted at version v"
// propagates and a stale peer cannot resurrect an erased key — the reason
// ObjectStore::erase leaves tombstones at all.  Adopted entries are
// written through the requester's WAL (apply_remote_*), making caught-up
// state exactly as durable as locally-originated writes.
//
// Topology: each replica runs one AntiEntropy puller per peer on a
// periodic timer (background priority — catch-up traffic must never
// starve core operations), and serves "ae.pull" via serve().  Pull-based
// symmetry means bidirectional convergence needs no coordination: each
// side independently fetches what it is missing.
#pragma once

#include <cstdint>
#include <string>

#include "durable/store.hpp"
#include "rpc/rpc.hpp"

namespace coop::durable {

struct AeConfig {
  std::string name = "store";  ///< metrics key component: durable.<name>.*
  sim::Duration period = sim::msec(250);  ///< pull interval (0 = manual)
  /// Per-pull call options.  Background priority by default: under
  /// admission control, catch-up is the first traffic to shed.
  rpc::CallOptions call{sim::msec(100), 1, 2.0, 0, net::Priority::kBackground};
};

/// One replica's periodic puller toward one peer.
class AntiEntropy {
 public:
  /// Registers the "ae.pull" responder for @p store on @p server.  The
  /// handler's lifetime is the server's; tear both down together at crash.
  static void serve(rpc::RpcServer& server, DurableStore& store);

  /// @p self is this puller's client address; @p peer the replica served
  /// by serve().  A positive cfg.period starts the periodic pull loop
  /// immediately; pull_now() works either way.
  AntiEntropy(net::Network& net, net::Address self, net::Address peer,
              DurableStore& store, AeConfig cfg);
  ~AntiEntropy();

  AntiEntropy(const AntiEntropy&) = delete;
  AntiEntropy& operator=(const AntiEntropy&) = delete;

  /// Issues one pull round unless one is already in flight.
  void pull_now();

  /// Stops the periodic loop (the in-flight round, if any, completes).
  void stop();

  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t keys_pulled() const noexcept {
    return keys_pulled_;
  }

  // --- wire codecs (shared by serve() and the unit tests) ------------------

  /// Version-vector summary of @p store: every live and tombstoned key
  /// with its known version.
  static std::string encode_summary(const DurableStore& store);

  /// Entries of @p store that dominate @p summary (absent key = version 0).
  static std::string make_reply(const DurableStore& store,
                                const std::string& summary);

  /// Adopts @p reply entries into @p store via apply_remote_*; returns
  /// how many were adopted (LWW may reject entries that raced with newer
  /// local writes).
  static std::uint64_t apply_reply(DurableStore& store,
                                   const std::string& reply);

 private:
  void arm_timer();
  void on_reply(const rpc::RpcResult& result);

  sim::Simulator& sim_;
  obs::Obs& obs_;
  DurableStore& store_;
  AeConfig cfg_;
  net::Address peer_;
  rpc::RpcClient client_;
  sim::EventId timer_ = sim::kInvalidEvent;
  bool in_flight_ = false;
  bool stopped_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t keys_pulled_ = 0;
  // Registry-owned "durable.<name>.*" counters.
  util::Counter* rounds_metric_;
  util::Counter* pulled_metric_;
};

}  // namespace coop::durable
