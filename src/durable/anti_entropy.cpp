#include "durable/anti_entropy.hpp"

#include <map>
#include <utility>
#include <vector>

#include "util/codec.hpp"

namespace coop::durable {

namespace {

std::string metric_key(const std::string& name, const char* leaf) {
  return "durable." + name + "." + leaf;
}

/// One wire entry of a pull reply.
struct AeEntry {
  std::uint8_t type = WalRecord::kPut;
  std::string key;
  std::string value;  ///< empty for erases
  std::uint64_t version = 0;
  std::uint64_t stamp = 0;
};

}  // namespace

std::string AntiEntropy::encode_summary(const DurableStore& store) {
  const auto& mem = store.store();
  const auto keys = mem.keys();
  util::Writer w;
  w.put(static_cast<std::uint32_t>(keys.size() + mem.tombstones().size()));
  for (const auto& k : keys) w.put_string(k).put(mem.version(k));
  for (const auto& [k, t] : mem.tombstones()) w.put_string(k).put(t.version);
  return w.take();
}

std::string AntiEntropy::make_reply(const DurableStore& store,
                                    const std::string& summary) {
  std::map<std::string, std::uint64_t> known;
  util::Reader r(summary);
  const auto n = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    std::string key = r.get_string();
    known[std::move(key)] = r.get<std::uint64_t>();
  }
  if (r.failed()) return {};  // malformed summary: send nothing

  auto known_version = [&known](const std::string& k) -> std::uint64_t {
    auto it = known.find(k);
    return it == known.end() ? 0 : it->second;
  };

  const auto& mem = store.store();
  std::vector<AeEntry> out;
  for (const auto& k : mem.keys()) {
    const std::uint64_t v = mem.version(k);
    if (v > known_version(k)) {
      out.push_back({WalRecord::kPut, k, *mem.read(k), v, 0});
    }
  }
  for (const auto& [k, t] : mem.tombstones()) {
    if (t.version > known_version(k)) {
      out.push_back({WalRecord::kErase, k, "", t.version, t.stamp});
    }
  }

  util::Writer w;
  w.put(static_cast<std::uint32_t>(out.size()));
  for (const AeEntry& e : out) {
    w.put(e.type)
        .put_string(e.key)
        .put_string(e.value)
        .put(e.version)
        .put(e.stamp);
  }
  return w.take();
}

std::uint64_t AntiEntropy::apply_reply(DurableStore& store,
                                       const std::string& reply) {
  util::Reader r(reply);
  const auto n = r.get<std::uint32_t>();
  std::uint64_t adopted = 0;
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    const auto type = r.get<std::uint8_t>();
    std::string key = r.get_string();
    std::string value = r.get_string();
    const auto version = r.get<std::uint64_t>();
    const auto stamp = r.get<std::uint64_t>();
    if (r.failed()) break;
    if (type == WalRecord::kPut) {
      if (store.apply_remote_put(key, std::move(value), version, stamp)) {
        ++adopted;
      }
    } else if (type == WalRecord::kErase) {
      if (store.apply_remote_erase(key, version, stamp)) ++adopted;
    }
  }
  return adopted;
}

void AntiEntropy::serve(rpc::RpcServer& server, DurableStore& store) {
  server.register_method("ae.pull", [&store](const std::string& request) {
    return rpc::HandlerResult::success(make_reply(store, request));
  });
}

AntiEntropy::AntiEntropy(net::Network& net, net::Address self,
                         net::Address peer, DurableStore& store, AeConfig cfg)
    : sim_(net.simulator()),
      obs_(net.obs()),
      store_(store),
      cfg_(std::move(cfg)),
      peer_(peer),
      client_(net, self) {
  auto& m = obs_.metrics;
  rounds_metric_ = &m.counter(metric_key(cfg_.name, "ae_rounds"));
  pulled_metric_ = &m.counter(metric_key(cfg_.name, "ae_keys_pulled"));
  if (cfg_.period > 0) arm_timer();
}

AntiEntropy::~AntiEntropy() { stop(); }

void AntiEntropy::stop() {
  stopped_ = true;
  if (timer_ != sim::kInvalidEvent) {
    sim_.cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }
}

void AntiEntropy::arm_timer() {
  if (timer_ != sim::kInvalidEvent || stopped_) return;
  timer_ = sim_.schedule_after(cfg_.period, [this] {
    timer_ = sim::kInvalidEvent;
    pull_now();
    arm_timer();
  });
}

void AntiEntropy::pull_now() {
  if (in_flight_ || stopped_) return;
  in_flight_ = true;
  ++rounds_;
  rounds_metric_->inc();
  client_.call(
      peer_, "ae.pull", encode_summary(store_),
      [this](const rpc::RpcResult& result) { on_reply(result); }, cfg_.call);
}

void AntiEntropy::on_reply(const rpc::RpcResult& result) {
  in_flight_ = false;
  // A timeout/rejection just means this round learned nothing; the next
  // periodic pull tries again.  Catch-up is idempotent by construction.
  if (!result.ok()) return;
  const std::uint64_t adopted = apply_reply(store_, result.reply);
  keys_pulled_ += adopted;
  if (adopted > 0) {
    pulled_metric_->inc(adopted);
    obs_.tracer.event(sim_.now(), obs::Category::kDurable, "ae_pull",
                      {{"adopted", static_cast<double>(adopted)}});
  }
}

}  // namespace coop::durable
