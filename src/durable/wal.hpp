// Per-node write-ahead log in virtual time.
//
// The paper's asynchronous quadrants assume the shared information space
// outlives any one session or node; the chaos plane (DESIGN.md §10) only
// proved "no acked op lost" because the harness kept server state in
// harness-owned maps across restart().  This module makes durability a
// *platform* concern: state survives a crash because — and only because —
// it was written ahead to a stable medium and replayed on recovery.
//
// Model.  StableMedia is the disk platter: plain byte arrays owned by the
// harness, the one thing a fail-stop crash does not erase.  Wal is the
// volatile runtime on top: appends buffer in memory and become durable at
// the next group-commit sync (a configurable virtual-time interval), so a
// crash deterministically drops the unsynced tail.  A crash may also leave
// a *torn* prefix of the record that was being written — garbage bytes the
// recovery scanner must detect and discard, never parse.
//
// Record format (util::Writer little-endian encoding), one frame per op:
//
//   u32 body_len | u32 fnv1a(body) | body
//   body = u8 type | u64 lsn | u64 version | u64 stamp | key | value
//
// The per-record checksum (FNV-1a, the same function the NIC uses for
// frame integrity) is what makes the torn/corrupt tail detectable: the
// scanner stops at the first frame whose length overruns the medium or
// whose body hashes wrong, counts the truncated bytes, and the replayer
// proceeds with the intact prefix.  Acknowledgements are gated on sync
// (Wal::on_durable), so truncated records are by construction un-acked.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace coop::durable {

/// The crash-surviving stable medium of one node.  Owned by the harness
/// (it *is* the disk); every volatile object — Wal, DurableStore, the
/// protocol endpoints — dies at crash time and is rebuilt from these bytes.
struct StableMedia {
  std::vector<std::uint8_t> log;         ///< synced WAL frames (+ torn tail)
  std::vector<std::uint8_t> checkpoint;  ///< last sealed snapshot, [] = none
  std::uint64_t torn_writes = 0;         ///< crashes that left a torn tail
  std::uint64_t checkpoints = 0;         ///< snapshots sealed over lifetime
};

/// One logical WAL record.
struct WalRecord {
  enum Type : std::uint8_t { kPut = 1, kErase = 2 };

  Type type = kPut;
  std::uint64_t lsn = 0;      ///< log sequence number, monotonic per node
  std::uint64_t version = 0;  ///< absolute per-key version of the op
  std::uint64_t stamp = 0;    ///< virtual time of the op (tombstone TTL)
  std::string key;
  std::string value;  ///< empty for kErase
};

struct WalConfig {
  std::string name = "wal";  ///< metrics key component: durable.<name>.*
  /// Group-commit interval: appends buffer until the next sync tick, so a
  /// sync amortizes over every op that arrived in the window.  0 = sync
  /// synchronously on every append (tests).
  sim::Duration sync_interval = sim::msec(5);
};

/// The volatile write-ahead-log runtime over one StableMedia.
class Wal {
 public:
  using DurableFn = std::function<void()>;

  Wal(sim::Simulator& sim, obs::Obs& obs, StableMedia& media, WalConfig cfg,
      std::uint64_t first_lsn);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends @p rec (its lsn is assigned here), buffers the frame for the
  /// next group commit and arms the sync timer.  If @p on_durable is
  /// given it fires exactly once, when the record's frame has reached the
  /// stable medium — or never, if a crash intervenes.  Returns the lsn.
  std::uint64_t append(WalRecord rec, DurableFn on_durable = nullptr);

  /// Flushes every buffered frame to the medium and fires their
  /// on_durable callbacks in append order.  Idempotent when empty.
  void sync();

  /// Fail-stop crash: the unsynced tail is lost, except for the first
  /// @p torn_bytes of it, which reach the medium as a torn (garbage) tail
  /// for the recovery scanner to discard.  Pending on_durable callbacks
  /// are dropped unfired.  The Wal is inert afterwards; destroy it.
  void crash(std::size_t torn_bytes = 0);

  /// Truncates the medium's log to empty (checkpoint seal).  Buffered
  /// unsynced frames are unaffected — callers sync() first.
  void truncate_log();

  /// Hook fired after each group commit that flushed data (after the
  /// flushed records' on_durable callbacks).  The durability plane uses it
  /// to trigger checkpoints on log growth.
  void set_after_sync(DurableFn fn) { after_sync_ = std::move(fn); }

  [[nodiscard]] std::uint64_t next_lsn() const noexcept { return next_lsn_; }
  [[nodiscard]] std::uint64_t synced_lsn() const noexcept {
    return synced_lsn_;
  }
  [[nodiscard]] std::size_t log_bytes() const noexcept {
    return media_.log.size();
  }
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] StableMedia& media() noexcept { return media_; }

  /// Encodes @p rec as one checksummed frame appended to @p out.
  static void encode_frame(std::vector<std::uint8_t>& out,
                           const WalRecord& rec);

  /// Sequential scanner over a medium's log bytes.  next() yields intact
  /// records until the end of the log or the first torn/corrupt frame;
  /// after it returns false, truncated_bytes()/truncated() report what
  /// the scan discarded (0/false for a clean log).
  class Scanner {
   public:
    explicit Scanner(const std::vector<std::uint8_t>& log) : log_(log) {}

    bool next(WalRecord& out);

    [[nodiscard]] std::size_t truncated_bytes() const noexcept {
      return log_.size() - pos_;
    }
    [[nodiscard]] bool truncated() const noexcept { return torn_; }
    [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

   private:
    const std::vector<std::uint8_t>& log_;
    std::size_t pos_ = 0;
    std::uint64_t records_ = 0;
    bool torn_ = false;
    bool done_ = false;
  };

 private:
  struct Waiter {
    std::uint64_t lsn;
    DurableFn fn;
  };

  void arm_sync_timer();

  sim::Simulator& sim_;
  StableMedia& media_;
  WalConfig cfg_;
  std::vector<std::uint8_t> pending_;  ///< encoded, not yet synced
  std::vector<Waiter> waiters_;        ///< ack gates for pending records
  DurableFn after_sync_;               ///< post-commit hook (may be empty)
  std::uint64_t next_lsn_;
  std::uint64_t synced_lsn_;  ///< highest lsn on the medium (0 = none)
  sim::EventId sync_timer_ = sim::kInvalidEvent;
  bool crashed_ = false;
  obs::Obs& obs_;
  // Registry-owned "durable.<name>.*" counters.
  util::Counter* appends_;
  util::Counter* syncs_;
  util::Counter* synced_bytes_;
};

}  // namespace coop::durable
