#include "durable/store.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "net/message.hpp"  // frame_checksum (FNV-1a)
#include "util/codec.hpp"

namespace coop::durable {

namespace {

std::string metric_key(const std::string& name, const char* leaf) {
  return "durable." + name + "." + leaf;
}

}  // namespace

DurableStore::DurableStore(sim::Simulator& sim, obs::Obs& obs,
                           StableMedia& media, DurableConfig cfg)
    : sim_(sim),
      obs_(obs),
      media_(media),
      cfg_(std::move(cfg)),
      wal_(sim, obs, media, WalConfig{cfg_.name, cfg_.sync_interval},
           recover(media, mem_, recovery_)) {
  auto& m = obs_.metrics;
  replays_ = &m.counter(metric_key(cfg_.name, "replays"));
  replayed_records_ = &m.counter(metric_key(cfg_.name, "replayed_records"));
  truncated_tail_ = &m.counter(metric_key(cfg_.name, "truncated_tail"));
  truncated_bytes_ = &m.counter(metric_key(cfg_.name, "truncated_bytes"));
  checkpoints_ = &m.counter(metric_key(cfg_.name, "checkpoints"));
  tombstones_gc_ = &m.counter(metric_key(cfg_.name, "tombstones_gc"));
  ts_recovery_ = obs_.series.series("durable.recovery_us");
  wal_.set_after_sync([this] { after_sync(); });

  replays_->inc();
  replayed_records_->inc(recovery_.replayed_records);
  if (recovery_.truncated_bytes > 0) {
    truncated_tail_->inc();
    truncated_bytes_->inc(recovery_.truncated_bytes);
  }
  // Modeled recovery latency: proportional to the bytes the replayer had
  // to read.  A post-checkpoint restart scans O(state + short log); a
  // restart after a long un-checkpointed run scans the whole history —
  // the series makes that difference a visible trajectory.
  const double recovery_us =
      cfg_.replay_us_per_byte * static_cast<double>(recovery_.scanned_bytes);
  if (ts_recovery_ != obs::Timeseries::kInvalidSeries) {
    obs_.series.observe(ts_recovery_, sim_.now(), recovery_us);
  }
  obs_.tracer.event(
      sim_.now(), obs::Category::kDurable, "recover",
      {{"records", static_cast<double>(recovery_.replayed_records)},
       {"torn_bytes", static_cast<double>(recovery_.truncated_bytes)},
       {"base_lsn", static_cast<double>(recovery_.base_lsn)},
       {"ckpt", recovery_.checkpoint_loaded ? 1.0 : 0.0}});
}

std::uint64_t DurableStore::recover(StableMedia& media,
                                    ccontrol::ObjectStore& mem,
                                    RecoveryStats& out) {
  std::uint64_t max_lsn = 0;

  // 1. Restore the last sealed snapshot, if it verifies.  A failed
  //    checksum falls back to log-only replay: the model writes snapshots
  //    atomically, so this path only arises from external tampering (and
  //    the scanner-hardening tests).
  if (!media.checkpoint.empty()) {
    bool ok = false;
    const auto* base = reinterpret_cast<const char*>(media.checkpoint.data());
    const std::size_t n = media.checkpoint.size();
    if (n >= 8) {
      util::Reader hdr(std::string_view(base, 8));
      const auto len = hdr.get<std::uint32_t>();
      const auto sum = hdr.get<std::uint32_t>();
      if (len == n - 8) {
        const std::string_view body(base + 8, len);
        if (net::frame_checksum(body) == sum) {
          util::Reader r(body);
          const auto base_lsn = r.get<std::uint64_t>();
          ccontrol::ObjectStore loaded;
          const auto n_items = r.get<std::uint32_t>();
          for (std::uint32_t i = 0; i < n_items && !r.failed(); ++i) {
            std::string key = r.get_string();
            std::string value = r.get_string();
            const auto version = r.get<std::uint64_t>();
            loaded.apply_put(key, std::move(value), version);
          }
          const auto n_tombs = r.get<std::uint32_t>();
          for (std::uint32_t i = 0; i < n_tombs && !r.failed(); ++i) {
            std::string key = r.get_string();
            const auto version = r.get<std::uint64_t>();
            const auto stamp = r.get<std::uint64_t>();
            loaded.apply_erase(key, version, stamp);
          }
          if (!r.failed() && r.exhausted()) {
            mem = std::move(loaded);
            out.checkpoint_loaded = true;
            out.base_lsn = base_lsn;
            if (base_lsn > 0) max_lsn = base_lsn - 1;
            ok = true;
          }
        }
      }
    }
    if (!ok) out.checkpoint_corrupt = true;
  }
  out.scanned_bytes = media.checkpoint.size() + media.log.size();

  // 2. Replay the intact log prefix with absolute versions (idempotent:
  //    a double restart reaches the same state).  Records the checkpoint
  //    already covers are skipped; the torn/corrupt tail is discarded by
  //    the scanner without ever being parsed.
  Wal::Scanner scan(media.log);
  WalRecord rec;
  while (scan.next(rec)) {
    if (rec.lsn < out.base_lsn) {
      ++out.skipped_records;
      continue;
    }
    if (rec.type == WalRecord::kPut) {
      mem.apply_put(rec.key, std::move(rec.value), rec.version);
    } else {
      mem.apply_erase(rec.key, rec.version, rec.stamp);
    }
    ++out.replayed_records;
    if (rec.lsn > max_lsn) max_lsn = rec.lsn;
  }
  if (scan.truncated()) {
    out.truncated_bytes = scan.truncated_bytes();
    // Repair: cut the torn suffix off the medium, so post-recovery
    // appends land after the intact prefix.  Without this, the garbage
    // would sit in front of every future (synced, acked!) record and the
    // next replay would discard them all.
    media.log.resize(media.log.size() - out.truncated_bytes);
  }

  return std::max<std::uint64_t>(max_lsn + 1, 1);
}

void DurableStore::put(const std::string& key, std::string value,
                       DurableFn on_durable) {
  mem_.write(key, value);
  WalRecord rec;
  rec.type = WalRecord::kPut;
  rec.version = mem_.version(key);
  rec.stamp = static_cast<std::uint64_t>(sim_.now());
  rec.key = key;
  rec.value = std::move(value);
  wal_.append(std::move(rec), std::move(on_durable));
}

void DurableStore::erase(const std::string& key, DurableFn on_durable) {
  mem_.erase(key, static_cast<std::uint64_t>(sim_.now()));
  // Whether this call deleted a live value or the key was already
  // tombstoned, the ack must gate on the tombstone being durable — a
  // re-issued delete whose first record died unsynced gets a fresh record
  // (same version: apply_erase keeps the max, so replay is idempotent).
  auto it = mem_.tombstones().find(key);
  if (it == mem_.tombstones().end()) {
    if (on_durable) on_durable();  // never existed: trivially durable
    return;
  }
  WalRecord rec;
  rec.type = WalRecord::kErase;
  rec.version = it->second.version;
  rec.stamp = it->second.stamp;
  rec.key = key;
  wal_.append(std::move(rec), std::move(on_durable));
}

bool DurableStore::apply_remote_put(const std::string& key, std::string value,
                                    std::uint64_t version,
                                    std::uint64_t stamp) {
  if (version <= mem_.version(key)) return false;  // LWW: ties keep local
  mem_.apply_put(key, value, version);
  WalRecord rec;
  rec.type = WalRecord::kPut;
  rec.version = version;
  rec.stamp = stamp;
  rec.key = key;
  rec.value = std::move(value);
  wal_.append(std::move(rec));
  return true;
}

bool DurableStore::apply_remote_erase(const std::string& key,
                                      std::uint64_t version,
                                      std::uint64_t stamp) {
  if (version <= mem_.version(key)) return false;  // LWW: ties keep local
  mem_.apply_erase(key, version, stamp);
  WalRecord rec;
  rec.type = WalRecord::kErase;
  rec.version = version;
  rec.stamp = stamp;
  rec.key = key;
  wal_.append(std::move(rec));
  return true;
}

void DurableStore::checkpoint() {
  if (checkpointing_) return;
  checkpointing_ = true;
  wal_.sync();  // the snapshot must cover every acked record

  const sim::TimePoint now = sim_.now();
  const std::uint64_t min_stamp =
      now >= cfg_.tombstone_ttl
          ? static_cast<std::uint64_t>(now - cfg_.tombstone_ttl)
          : 0;
  const std::size_t gc = mem_.gc_tombstones(min_stamp, cfg_.tombstone_cap);
  tombstones_gc_->inc(gc);

  const std::size_t log_before = wal_.log_bytes();
  util::Writer w;
  w.put(wal_.next_lsn());  // base_lsn: replay resumes here
  const auto keys = mem_.keys();
  w.put(static_cast<std::uint32_t>(keys.size()));
  for (const auto& k : keys) {
    w.put_string(k).put_string(*mem_.read(k)).put(mem_.version(k));
  }
  w.put(static_cast<std::uint32_t>(mem_.tombstones().size()));
  for (const auto& [k, t] : mem_.tombstones()) {
    w.put_string(k).put(t.version).put(t.stamp);
  }
  const std::string body = w.take();
  util::Writer hdr;
  hdr.put(static_cast<std::uint32_t>(body.size()))
      .put(net::frame_checksum(body));
  const std::string head = hdr.take();
  media_.checkpoint.assign(head.begin(), head.end());
  media_.checkpoint.insert(media_.checkpoint.end(), body.begin(), body.end());
  ++media_.checkpoints;
  wal_.truncate_log();

  checkpoints_->inc();
  obs_.tracer.event(
      sim_.now(), obs::Category::kDurable, "checkpoint",
      {{"bytes", static_cast<double>(media_.checkpoint.size())},
       {"log_truncated", static_cast<double>(log_before)},
       {"tombstones_gc", static_cast<double>(gc)}});
  checkpointing_ = false;
}

void DurableStore::after_sync() {
  max_log_bytes_ = std::max(max_log_bytes_, wal_.log_bytes());
  if (cfg_.checkpoint_log_bytes > 0 && !checkpointing_ &&
      wal_.log_bytes() >= cfg_.checkpoint_log_bytes) {
    checkpoint();
  }
}

}  // namespace coop::durable
